"""Standing experiment orchestrator: run a declared benchmark matrix.

:func:`run_matrix` executes every cell of an expanded
:class:`~repro.bench.experiment.MatrixConfig` through the existing
``Controller``/backend-registry path, with

* **bounded parallelism** — at most ``jobs`` trials in flight (each
  trial is one independent Controller run with its own ledger);
* **crash isolation** — an exception inside a trial marks that cell
  ``failed`` and the matrix keeps going; a hung trial trips the
  per-trial timeout and is marked ``timeout``;
* **incremental persistence** — every finished cell is written
  atomically to ``RUN_DIR/trials/<trial_id>.json`` the moment it
  completes, so an interrupted matrix resumes (``resume=True``)
  without re-running completed cells.

A completed run aggregates the per-trial ``RunTrace`` totals and
``extras["tiered_store"]`` telemetry into a schema-valid
``BENCH_<date>.json`` (validated by :mod:`repro.bench.trajectory`) and
a markdown report with per-axis pivot tables under the run directory.

The per-cell execution path mirrors the repo's sweep benchmarks: each
workload's no-spill peak defines the 100% RAM point, every cell runs
under ``ram_fraction * peak`` with an SSD + unbounded-disk hierarchy
(plus the compressed-in-RAM rung when the ``rung`` axis arms it),
plans are tier-aware for the hierarchy they run on, and the
``replan`` feedback arm reports the second pass of the observed-cost
loop.  MiniDB cells run the real SQL demo workload with real spills
under a temporary directory; their timings are wall-clock.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.bench.experiment import (
    DEMO_WORKLOAD,
    MatrixConfig,
    PrunedCell,
    TrialSpec,
    expand_matrix,
    load_config,
)
from repro.errors import ValidationError

#: Terminal trial statuses; a resumed run re-executes none of them
#: unless ``retry_failed`` re-opens the non-``ok`` ones.
TERMINAL_STATUSES = ("ok", "failed", "timeout")

#: Backends whose trial timings are real wall-clock: their arms
#: aggregate under ``data.wall_clock`` (reported, never regression-
#: gated) so ``data.totals`` stays deterministic across machines.
WALL_CLOCK_BACKENDS = ("minidb",)

#: Columns of the aggregated ``BENCH_<date>.json`` table.
BENCH_HEADERS = ["backend", "workload", "RAM frac", "codec", "feedback",
                 "rung", "seed", "status", "end-to-end (s)", "spills",
                 "promotes"]


class TrialTimeout(Exception):
    """A trial exceeded the configured per-trial timeout."""


@dataclass
class MatrixRun:
    """What one :func:`run_matrix` invocation did."""

    run_dir: str
    total: int = 0
    ok: int = 0
    failed: int = 0
    timeout: int = 0
    pruned: int = 0
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    complete: bool = False
    interrupted: bool = False
    bench_path: str | None = None
    report_path: str | None = None

    def summary(self) -> str:
        parts = [f"{self.ok} ok"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.timeout:
            parts.append(f"{self.timeout} timeout")
        note = ("" if self.complete else
                " [incomplete — resume to finish]")
        return (f"cells: {self.total} total ({', '.join(parts)}), "
                f"{self.pruned} pruned; ran {len(self.executed)}, "
                f"resumed past {len(self.skipped)}{note}")


# ----------------------------------------------------------------------
# per-trial execution
# ----------------------------------------------------------------------
_PEAK_CACHE: dict[tuple, float] = {}
_PEAK_LOCK = threading.Lock()


def _baseline_peak(workload: str, scale_gb: float, method: str,
                   seed: int) -> float:
    """The workload's no-spill peak catalog usage — the 100% RAM point
    every cell's ``ram_fraction`` is relative to.  Cached per process;
    recomputing after a resume is deterministic."""
    from repro.engine.controller import Controller
    from repro.workloads.five_workloads import build_workload

    key = (workload, scale_gb, method, seed)
    with _PEAK_LOCK:
        if key in _PEAK_CACHE:
            return _PEAK_CACHE[key]
    graph = build_workload(workload, scale_gb=scale_gb)
    trace = Controller().refresh(graph, graph.total_size(),
                                 method=method, seed=seed)
    with _PEAK_LOCK:
        _PEAK_CACHE.setdefault(key, trace.peak_catalog_usage)
        return _PEAK_CACHE[key]


def _store_counters(trace) -> tuple[int, int]:
    report = trace.extras.get("tiered_store") or {}
    return (report.get("spill_count", 0), report.get("promote_count", 0))


def _run_graph_trial(spec: TrialSpec, config: MatrixConfig,
                     cancel: threading.Event | None = None) -> dict:
    from repro.engine.controller import Controller
    from repro.engine.simulator import SimulatorOptions
    from repro.store.config import RAM_COMPRESSED, SpillConfig, TierSpec
    from repro.workloads.five_workloads import build_workload

    plan_method = "sc" if spec.method == "lru" else spec.method
    peak = _baseline_peak(spec.workload, config.scale_gb, plan_method,
                          spec.seed)
    ram = spec.ram_fraction * peak
    graph = build_workload(spec.workload, scale_gb=config.scale_gb)
    if spec.backend == "lru":
        trace = Controller(cancel=cancel).refresh(graph, ram, method="lru",
                                                  seed=spec.seed)
        return _metrics(spec, trace)
    tiers = [TierSpec("ssd", config.ssd_fraction * peak),
             TierSpec("disk")]
    if spec.rung:
        tiers.insert(0, TierSpec(RAM_COMPRESSED,
                                 config.rung_fraction * peak))
    spill = SpillConfig(tiers=tuple(tiers), policy=config.policy,
                        codec=spec.codec)
    controller = Controller(options=SimulatorOptions(spill=spill),
                            cancel=cancel)
    plan = controller.plan(graph, ram, method=spec.method,
                           seed=spec.seed, tier_aware=True)
    trace = controller.refresh(graph, ram, method=spec.method,
                               seed=spec.seed, plan=plan,
                               backend=spec.backend,
                               workers=spec.workers)
    first_pass_s = None
    if spec.feedback == "replan":
        first_pass_s = trace.end_to_end_time
        plan = controller.replan_from_trace(graph, trace, ram,
                                            method=spec.method,
                                            seed=spec.seed)
        trace = controller.refresh(graph, ram, method=spec.method,
                                   seed=spec.seed, plan=plan,
                                   backend=spec.backend,
                                   workers=spec.workers)
    return _metrics(spec, trace, first_pass_s=first_pass_s)


def _run_minidb_trial(spec: TrialSpec, config: MatrixConfig,
                      cancel: threading.Event | None = None) -> dict:
    import tempfile

    from repro.db.engine import demo_workload
    from repro.engine.controller import Controller
    from repro.store.config import SpillConfig

    with tempfile.TemporaryDirectory() as scratch:
        workload = demo_workload(f"{scratch}/warehouse",
                                 rows=config.minidb_rows, seed=spec.seed)
        profiled = workload.profile()
        ram = spec.ram_fraction * profiled.total_size()
        rung_gb = config.rung_fraction * ram if spec.rung else 0.0
        controller = Controller(
            spill_dir=f"{scratch}/spill", ram_compressed_gb=rung_gb,
            spill=SpillConfig(policy=config.policy, codec=spec.codec),
            cancel=cancel)
        plan = controller.plan_for_minidb(profiled, ram,
                                          method=spec.method,
                                          seed=spec.seed, tier_aware=True)
        trace = controller.refresh_on_minidb(workload, ram,
                                             method=spec.method,
                                             seed=spec.seed, plan=plan)
    return _metrics(spec, trace)


def _metrics(spec: TrialSpec, trace, first_pass_s=None) -> dict:
    spills, promotes = _store_counters(trace)
    metrics = {
        "end_to_end_s": trace.end_to_end_time,
        "peak_catalog": trace.peak_catalog_usage,
        "memory_budget": trace.memory_budget,
        "spill_count": spills,
        "promote_count": promotes,
    }
    if first_pass_s is not None:
        metrics["first_pass_s"] = first_pass_s
    return {"metrics": metrics, "trace": trace.to_dict()}


def _trial_body(spec: TrialSpec, config: MatrixConfig,
                cancel: threading.Event | None = None) -> dict:
    """Execute one cell and return its result payload (metrics +
    serialized trace).  Module-level so tests can monkeypatch it.
    ``cancel`` is threaded into every Controller the cell builds, so a
    timed-out trial stops at its next node boundary instead of running
    (and emitting) to completion in an abandoned thread."""
    if spec.backend == "minidb":
        return _run_minidb_trial(spec, config, cancel=cancel)
    return _run_graph_trial(spec, config, cancel=cancel)


#: Seconds a timed-out trial gets to observe its cancel event and
#: unwind before the thread is abandoned — the grace only needs to
#: cover one node's execution, not the whole trial.
_CANCEL_GRACE_S = 5.0


def _run_with_timeout(fn, timeout: float | None):
    """Run ``fn(cancel)`` bounded by ``timeout`` seconds.

    The body runs in a daemon thread.  On timeout the cooperative
    ``cancel`` event is set, so the body stops emitting (metric/bus
    writes, trial records) and frees its executor slot at the next node
    boundary — the backends raise
    :class:`~repro.errors.RunCancelledError` between nodes.  After a
    short grace the thread is abandoned regardless (a body stuck
    *inside* one node holds no external resources), and
    :class:`TrialTimeout` is raised so the cell records as ``timeout``
    instead of wedging the whole matrix.
    """
    cancel = threading.Event()
    if timeout is None:
        return fn(cancel)
    box: dict = {}

    def target() -> None:
        try:
            box["value"] = fn(cancel)
        except BaseException as exc:  # crash isolation: captured, not raised
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True,
                              name="matrix-trial")
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        cancel.set()
        thread.join(_CANCEL_GRACE_S)
        raise TrialTimeout(f"trial exceeded {timeout:g}s")
    if "error" in box:
        raise box["error"]
    return box["value"]


def _execute_trial(spec: TrialSpec, config: MatrixConfig,
                   fail_matching: tuple[str, ...]) -> dict:
    """One cell, crash-isolated: always returns a terminal record."""
    started = time.perf_counter()
    record = {"trial_id": spec.trial_id, "trial": spec.to_dict(),
              "status": "failed", "error": None, "metrics": None,
              "trace": None}
    try:
        for pattern in fail_matching:
            if pattern in spec.trial_id:
                raise RuntimeError(
                    f"injected failure (--inject-fail {pattern!r})")
        result = _run_with_timeout(
            lambda cancel: _trial_body(spec, config, cancel=cancel),
            config.trial_timeout_s)
        record.update(status="ok", **result)
    except TrialTimeout as exc:
        record.update(status="timeout", error=str(exc))
    except BaseException as exc:
        record.update(status="failed",
                      error="".join(traceback.format_exception_only(
                          type(exc), exc)).strip())
    record["wall_s"] = time.perf_counter() - started
    return record


# ----------------------------------------------------------------------
# run directory persistence
# ----------------------------------------------------------------------
def _write_json_atomic(path: pathlib.Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


def _load_records(trials_dir: pathlib.Path) -> dict[str, dict]:
    records: dict[str, dict] = {}
    if not trials_dir.is_dir():
        return records
    for path in sorted(trials_dir.glob("*.json")):
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # a torn write from a killed run: re-execute it
        if record.get("status") in TERMINAL_STATUSES:
            records[record["trial_id"]] = record
    return records


def _check_run_dir(run_path: pathlib.Path, config: MatrixConfig,
                   resume: bool) -> None:
    """Guard the run directory: a fresh run must not silently mix with
    an existing one, and a resume must use the identical config."""
    marker = run_path / "config.json"
    canonical = json.dumps(config.to_dict(), sort_keys=True)
    if marker.exists():
        stored = json.dumps(json.loads(marker.read_text(encoding="utf-8")),
                            sort_keys=True)
        if stored != canonical:
            raise ValidationError(
                f"{run_path} holds a different matrix config; resuming "
                f"would mix cells from two experiments — use a fresh "
                f"run directory")
        if not resume:
            raise ValidationError(
                f"{run_path} already holds this matrix; pass "
                f"resume=True (--resume) to continue it or use a "
                f"fresh run directory")
    else:
        run_path.mkdir(parents=True, exist_ok=True)
        (run_path / "trials").mkdir(exist_ok=True)
        _write_json_atomic(marker, config.to_dict())


# ----------------------------------------------------------------------
# the matrix driver
# ----------------------------------------------------------------------
def run_matrix(config: MatrixConfig, run_dir: str, *,
               jobs: int | None = None, resume: bool = False,
               date: str | None = None, stop_after: int | None = None,
               fail_matching: tuple[str, ...] = (),
               retry_failed: bool = False,
               progress=None) -> MatrixRun:
    """Execute (or resume) a benchmark matrix into ``run_dir``.

    Args:
        config: the parsed matrix config.
        run_dir: run directory; created if missing.  Holds
            ``config.json``, ``trials/<trial_id>.json`` per finished
            cell, and — once every cell is terminal — the aggregated
            ``BENCH_<date>.json`` and ``report.md``.
        jobs: bounded trial parallelism (default: the config's).
        resume: continue an existing run directory, skipping cells
            that already hold a terminal result.
        date: the snapshot date for ``BENCH_<date>.json`` (default:
            today).
        stop_after: execute at most this many pending cells, then
            return an incomplete run (test hook for interruption).
        fail_matching: trial-id substrings to fail on purpose —
            exercises the crash-isolation path end to end.
        retry_failed: with ``resume``, re-execute cells whose stored
            status is ``failed``/``timeout`` (``ok`` cells never
            re-run).
        progress: optional ``callable(str)`` for per-cell progress.

    Returns:
        A :class:`MatrixRun` summary.

    Raises:
        ValidationError: bad config, or a run-dir/config mismatch.
    """
    run_path = pathlib.Path(run_dir)
    config.validate()
    _check_run_dir(run_path, config, resume=resume)
    trials_dir = run_path / "trials"
    trials_dir.mkdir(exist_ok=True)
    say = progress or (lambda message: None)

    trials, pruned = expand_matrix(config)
    if not trials:
        raise ValidationError("the matrix expands to zero runnable "
                              "cells; check the axes")
    records = _load_records(trials_dir)
    run = MatrixRun(run_dir=str(run_path), total=len(trials),
                    pruned=len(pruned))
    pending: list[TrialSpec] = []
    for spec in trials:
        stored = records.get(spec.trial_id)
        if stored is None:
            pending.append(spec)
        elif retry_failed and stored["status"] != "ok":
            pending.append(spec)
        else:
            run.skipped.append(spec.trial_id)
    if stop_after is not None:
        pending = pending[:stop_after]

    workers = max(1, jobs if jobs is not None else config.jobs)
    if pending:
        say(f"matrix {config.name}: {len(pending)} cell(s) to run, "
            f"{len(run.skipped)} already done, {len(pruned)} pruned")
    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_trial, spec, config, fail_matching):
                spec for spec in pending}
            for future in as_completed(futures):
                spec = futures[future]
                record = future.result()
                _write_json_atomic(trials_dir / f"{spec.trial_id}.json",
                                   record)
                records[spec.trial_id] = record
                run.executed.append(spec.trial_id)
                note = ("" if record["status"] == "ok"
                        else f" ({record['error']})")
                say(f"  [{len(run.executed)}/{len(pending)}] "
                    f"{spec.trial_id}: {record['status']} "
                    f"{record['wall_s']:.2f}s{note}")
    except KeyboardInterrupt:
        run.interrupted = True
        say(f"matrix {config.name}: interrupted — finished cells are "
            f"saved; resume with --resume {run_path}")

    for record in records.values():
        status = record["status"]
        if status == "ok":
            run.ok += 1
        elif status == "timeout":
            run.timeout += 1
        else:
            run.failed += 1
    run.complete = all(spec.trial_id in records for spec in trials)
    run.executed.sort()
    run.skipped.sort()
    if run.complete:
        payload = aggregate(config, records, pruned)
        when = date or datetime.date.today().isoformat()
        bench_path = run_path / f"BENCH_{when}.json"
        _write_json_atomic(bench_path, payload)
        report_path = run_path / "report.md"
        report_path.write_text(
            render_report(config, records, pruned, payload, date=when),
            encoding="utf-8")
        run.bench_path = str(bench_path)
        run.report_path = str(report_path)
        say(f"matrix {config.name}: {run.summary()}")
        say(f"  snapshot: {bench_path}")
        say(f"  report:   {report_path}")
    return run


def run_matrix_file(config_path: str, run_dir: str, **kwargs) -> MatrixRun:
    """Convenience wrapper: load a config file, then :func:`run_matrix`."""
    return run_matrix(load_config(config_path), run_dir, **kwargs)


# ----------------------------------------------------------------------
# aggregation: BENCH_<date>.json + markdown report
# ----------------------------------------------------------------------
def _ordered(records: dict[str, dict]) -> list[dict]:
    return [records[key] for key in sorted(records)]


def aggregate(config: MatrixConfig, records: dict[str, dict],
              pruned: list[PrunedCell]) -> dict:
    """Fold terminal trial records into the ``BENCH_<date>.json``
    payload :mod:`repro.bench.trajectory` validates and gates.

    ``data.totals`` maps ``<backend>+<codec>+fb-<arm>[+rung]`` arms to
    ``<workload>@<fraction>`` points (mean seconds across seeds —
    lower is better, the regression gate's tracked metrics).  Only
    deterministic metrics go in it — never dispatch overhead, and
    wall-clock backends (MiniDB) aggregate under ``data.wall_clock``
    instead, which the gate does not track — so a matrix aggregates
    bit-identically across resumes and machines.
    """
    rows: list[list] = []
    trials_data: dict[str, dict] = {}
    failed: list[str] = []
    sums: dict[str, dict[str, list[float]]] = {}
    wall_sums: dict[str, dict[str, list[float]]] = {}
    for record in _ordered(records):
        spec = TrialSpec.from_dict(record["trial"])
        metrics = record.get("metrics") or {}
        status = record["status"]
        seconds = metrics.get("end_to_end_s")
        rows.append([
            spec.backend, spec.workload, f"{spec.ram_fraction:g}",
            spec.codec, spec.feedback, "yes" if spec.rung else "no",
            spec.seed, status,
            seconds if status == "ok" else "-",
            metrics.get("spill_count", "-") if status == "ok" else "-",
            metrics.get("promote_count", "-") if status == "ok" else "-",
        ])
        entry = {"status": status}
        if status == "ok":
            entry.update(metrics)
        else:
            failed.append(record["trial_id"])
            entry["error"] = record.get("error")
        trials_data[record["trial_id"]] = entry
        if status == "ok":
            arm = f"{spec.backend}+{spec.codec}+fb-{spec.feedback}"
            if spec.rung:
                arm += "+rung"
            point = f"{spec.workload}@{spec.ram_fraction:g}"
            bucket = (wall_sums if spec.backend in WALL_CLOCK_BACKENDS
                      else sums)
            bucket.setdefault(arm, {}).setdefault(point, []).append(
                seconds)

    def fold(buckets: dict) -> dict:
        return {arm: {point: sum(values) / len(values)
                      for point, values in sorted(points.items())}
                for arm, points in sorted(buckets.items())}

    totals, wall_clock = fold(sums), fold(wall_sums)
    return {
        "experiment": config.name,
        "title": config.title,
        "headers": list(BENCH_HEADERS),
        "rows": rows,
        "data": {
            "totals": totals,
            "wall_clock": wall_clock,
            "trials": trials_data,
            "failed": failed,
            "pruned": len(pruned),
            "config": config.to_dict(),
        },
    }


def _md_table(headers: list[str], rows: list[list]) -> str:
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(cell(c) for c in row) + " |"
              for row in rows]
    return "\n".join(lines)


def _pivot(records: dict[str, dict], row_of, col_of
           ) -> tuple[list[str], list[str], dict]:
    """Mean end-to-end seconds of ``ok`` cells, grouped two ways."""
    cells: dict[tuple[str, str], list[float]] = {}
    for record in _ordered(records):
        if record["status"] != "ok":
            continue
        spec = TrialSpec.from_dict(record["trial"])
        key = (str(row_of(spec)), str(col_of(spec)))
        cells.setdefault(key, []).append(
            record["metrics"]["end_to_end_s"])
    row_keys = sorted({row for row, _ in cells})
    col_keys = sorted({col for _, col in cells})
    means = {key: sum(values) / len(values)
             for key, values in cells.items()}
    return row_keys, col_keys, means


def _pivot_section(title: str, records: dict[str, dict], row_of, col_of,
                   row_header: str) -> str:
    row_keys, col_keys, means = _pivot(records, row_of, col_of)
    if not row_keys:
        return ""
    rows = [[row] + [means.get((row, col), "-") for col in col_keys]
            for row in row_keys]
    return (f"## {title}\n\n"
            + _md_table([row_header] + col_keys, rows) + "\n")


def render_report(config: MatrixConfig, records: dict[str, dict],
                  pruned: list[PrunedCell], payload: dict,
                  date: str) -> str:
    """The run's markdown report: summary, failures, full results,
    and per-axis pivot tables (mean seconds of ``ok`` cells)."""
    ordered = _ordered(records)
    ok = [r for r in ordered if r["status"] == "ok"]
    bad = [r for r in ordered if r["status"] != "ok"]
    wall = sum(r.get("wall_s", 0.0) for r in ordered)
    lines = [
        f"# {config.title}",
        "",
        f"Experiment `{config.name}` — {date}",
        "",
        f"Cells: **{len(ordered)}** ({len(ok)} ok, {len(bad)} "
        f"failed/timeout), {len(pruned)} pruned as structurally "
        f"impossible; {wall:.1f}s of trial wall-clock.",
        "",
    ]
    if bad:
        lines += ["## Failed cells", "",
                  _md_table(["trial", "status", "error"],
                            [[r["trial_id"], r["status"],
                              (r.get("error") or "").replace("|", "\\|")]
                             for r in bad]), ""]
    lines += ["## Results", "",
              _md_table(payload["headers"], payload["rows"]), ""]
    for section in (
            _pivot_section(
                "Mean end-to-end seconds: backend × workload", records,
                lambda s: s.backend, lambda s: s.workload, "backend"),
            _pivot_section(
                "Mean end-to-end seconds: codec × RAM fraction", records,
                lambda s: s.codec, lambda s: f"{s.ram_fraction:g}",
                "codec"),
            _pivot_section(
                "Mean end-to-end seconds: feedback arm × backend",
                records, lambda s: s.feedback, lambda s: s.backend,
                "feedback"),
            _pivot_section(
                "Mean end-to-end seconds: rung × backend", records,
                lambda s: "rung" if s.rung else "no rung",
                lambda s: s.backend, "arm")):
        if section:
            lines += [section]
    if pruned:
        lines += ["## Pruned cells", "",
                  _md_table(["cell", "reason"],
                            [[cell.spec.trial_id, cell.reason]
                             for cell in pruned]), ""]
    return "\n".join(lines)
