"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Aligned monospace table (first column left, the rest right)."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cell.rjust(width)
                  for cell, width in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"
