"""Plain-text rendering of experiment results + artifact emission."""

from __future__ import annotations

import json
import os
from typing import Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Aligned monospace table (first column left, the rest right)."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cell.rjust(width)
                  for cell, width in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"


def result_payload(result, **extra) -> dict:
    """The canonical JSON shape of one experiment's data — the
    ``BENCH_*.json``/artifact schema :mod:`repro.bench.trajectory`
    validates (``experiment``/``title``/``headers``/``rows``/``data``),
    plus any ``extra`` side-band keys.

    ``result`` is an :class:`~repro.bench.experiments.ExperimentResult`
    (or anything with the same attributes).
    """
    payload = {
        "experiment": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "data": dict(result.data),
    }
    overlap = set(payload) & set(extra)
    if overlap:
        raise ValueError(f"extra keys {sorted(overlap)} would shadow "
                         f"the schema's required keys")
    payload.update(extra)
    return payload


def emit_result_json(result, path: str | None = None,
                     env_var: str | None = None, **extra) -> str | None:
    """Write :func:`result_payload` as JSON — the one helper behind
    every ``bench_*.py`` artifact dump.

    ``path`` names the output directly; ``env_var`` looks the path up
    in the environment instead (the benchmarks' opt-in convention,
    e.g. ``RAMCODEC_BENCH_JSON``).  Returns the path written, or
    ``None`` when the environment variable is unset/empty.
    """
    if path is None:
        if env_var is None:
            raise ValueError("pass path or env_var")
        path = os.environ.get(env_var)
        if not path:
            return None
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_payload(result, **extra), handle, indent=2,
                  default=str)
    return path
