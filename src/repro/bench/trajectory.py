"""Schema validation and regression gating for ``BENCH_*.json`` files.

The repo tracks its performance trajectory as dated snapshots at the
repository root (``BENCH_2026-08-07.json`` ...), each the serialized
result of one benchmark experiment.  CI runs this module over every
snapshot to catch two failure modes before they land:

* a **malformed snapshot** — missing keys, ragged rows, NaN/inf
  timings — which would silently poison later comparisons; and
* a **perf regression** — a tracked metric (the per-arm end-to-end
  seconds under ``data.totals``, lower is better) worse than the
  previous dated snapshot by more than a noise threshold.

Usage (the CI entry point)::

    PYTHONPATH=src python -m repro.bench.trajectory BENCH_*.json

Exit status is non-zero on any schema error or gated regression.
"""

from __future__ import annotations

import json
import math
import re
import sys

from repro.errors import ValidationError

#: Keys every snapshot must carry (``data`` holds the machine-readable
#: metrics; ``headers``/``rows`` the human-readable table).
REQUIRED_KEYS = ("experiment", "title", "headers", "rows", "data")

#: Tolerated relative slowdown between consecutive snapshots before the
#: gate fails — simulated timings are deterministic, but arms whose
#: inputs legitimately changed (rescaled workloads, new cost presets)
#: need slack; 5% also covers wall-clock-derived metrics.
DEFAULT_NOISE = 0.05

_DATE_PATTERN = re.compile(r"BENCH_(\d{4}-\d{2}-\d{2})\.json$")


def _check_finite(value, where: str, errors: list[str]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)) and not math.isfinite(value):
        errors.append(f"{where}: non-finite number {value!r}")


def validate_bench_file(payload: dict, name: str = "snapshot"
                        ) -> list[str]:
    """All schema violations in one pass (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"{name}: top level must be an object"]
    for key in REQUIRED_KEYS:
        if key not in payload:
            errors.append(f"{name}: missing required key {key!r}")
    headers = payload.get("headers")
    rows = payload.get("rows")
    if headers is not None and not (
            isinstance(headers, list)
            and all(isinstance(h, str) for h in headers)):
        errors.append(f"{name}: headers must be a list of strings")
    if isinstance(headers, list) and isinstance(rows, list):
        for index, row in enumerate(rows):
            if not isinstance(row, list):
                errors.append(f"{name}: rows[{index}] is not a list")
                continue
            if len(row) != len(headers):
                errors.append(
                    f"{name}: rows[{index}] has {len(row)} cells for "
                    f"{len(headers)} headers")
            for cell in row:
                _check_finite(cell, f"{name}: rows[{index}]", errors)
    data = payload.get("data")
    if data is not None and not isinstance(data, dict):
        errors.append(f"{name}: data must be an object")
    for key, value in tracked_metrics(payload).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{name}: {key}: not a number: {value!r}")
        else:
            _check_finite(value, f"{name}: {key}", errors)
    return errors


def tracked_metrics(payload: dict) -> dict[str, float]:
    """Flatten ``data.totals`` (arm -> {point: seconds}, lower is
    better) into ``totals.<arm>.<point>`` gate keys."""
    totals = payload.get("data", {}).get("totals", {})
    metrics: dict[str, float] = {}
    if not isinstance(totals, dict):
        return metrics
    for arm, points in totals.items():
        if isinstance(points, dict):
            for point, seconds in points.items():
                metrics[f"totals.{arm}.{point}"] = seconds
        else:  # an arm may also be a flat scalar
            metrics[f"totals.{arm}"] = points
    return metrics


def regression_gate(old: dict, new: dict,
                    noise: float = DEFAULT_NOISE) -> list[str]:
    """Tracked metrics of ``new`` worse than ``old`` beyond the noise
    threshold (metrics present on only one side are skipped — arms come
    and go as experiments evolve)."""
    before = tracked_metrics(old)
    after = tracked_metrics(new)
    failures: list[str] = []
    for key in sorted(set(before) & set(after)):
        baseline, current = before[key], after[key]
        if not all(isinstance(v, (int, float)) and math.isfinite(v)
                   for v in (baseline, current)):
            continue
        if baseline <= 0:
            continue
        if current > baseline * (1.0 + noise):
            slower = 100.0 * (current / baseline - 1.0)
            failures.append(
                f"{key}: {current:.3f}s vs {baseline:.3f}s baseline "
                f"(+{slower:.1f}% > {100 * noise:.0f}% threshold)")
    return failures


def snapshot_date(path: str) -> str | None:
    """The YYYY-MM-DD embedded in a ``BENCH_*.json`` filename."""
    match = _DATE_PATTERN.search(path)
    return match.group(1) if match else None


def check_files(paths: list[str],
                noise: float = DEFAULT_NOISE) -> list[str]:
    """Validate every snapshot, then gate each consecutive dated pair.

    Raises :class:`ValidationError` on unreadable input; returns the
    combined list of schema errors and regression failures.
    """
    problems: list[str] = []
    loaded: list[tuple[str, str, dict]] = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"cannot read {path}: {exc}") from exc
        problems.extend(validate_bench_file(payload, name=path))
        date = snapshot_date(path)
        if date is not None:
            loaded.append((date, path, payload))
    loaded.sort(key=lambda item: item[:2])
    seen: dict[tuple, str] = {}
    for date, path, payload in loaded:
        key = (date, payload.get("experiment"))
        if key in seen:
            # two snapshots of one experiment on one date leave the
            # gate without an unambiguous baseline ordering
            problems.append(
                f"{path}: duplicate snapshot date {date} for experiment "
                f"{payload.get('experiment')!r} (also {seen[key]})")
        else:
            seen[key] = path
    for (_, old_path, old), (_, new_path, new) in zip(loaded, loaded[1:]):
        if old.get("experiment") != new.get("experiment"):
            continue
        for failure in regression_gate(old, new, noise=noise):
            problems.append(f"{new_path} (vs {old_path}): {failure}")
    return problems


def main(argv: list[str] | None = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.bench.trajectory BENCH_*.json",
              file=sys.stderr)
        return 2
    try:
        problems = check_files(paths)
    except ValidationError as exc:
        print(f"trajectory: error: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(f"trajectory: {problem}", file=sys.stderr)
    if problems:
        return 1
    count = len(paths)
    print(f"trajectory: {count} snapshot{'s' if count != 1 else ''} "
          f"valid, no tracked-metric regressions")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
