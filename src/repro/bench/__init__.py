"""Benchmark harness: one driver per paper figure/table.

Each driver in :mod:`repro.bench.experiments` regenerates the rows/series
of one artifact from the paper's evaluation (§VI) and returns plain data;
:mod:`repro.bench.report` renders aligned text tables. The ``benchmarks/``
directory wires each driver into pytest-benchmark.
"""

from repro.bench.methods import FIGURE9_METHODS, FIGURE12_METHODS, run_method
from repro.bench.report import (
    emit_result_json,
    format_table,
    result_payload,
)
from repro.bench import experiments

__all__ = [
    "FIGURE9_METHODS",
    "FIGURE12_METHODS",
    "run_method",
    "format_table",
    "result_payload",
    "emit_result_json",
    "experiments",
]
