"""Extension experiments beyond the paper's figures.

DESIGN.md §5 records the design decisions this reproduction made on top
of the paper's algorithms; each driver here ablates one of them, plus two
experiments for the paper's forward-looking claims (IVM compatibility,
workload drift). All drivers return the same
:class:`~repro.bench.experiments.ExperimentResult` shape the paper-figure
drivers use.

=======================  ====================================================
driver                   question answered
=======================  ====================================================
``ablation_convergence`` does Algorithm 2's size-based stop (line 5) beat a
                         score-based variant?
``ablation_tolerance``   what does the BnB 1 % optimality gap cost vs exact?
``sensitivity_background``  how robust are speedups to the background
                         channel's interference/parallelism assumptions?
``adaptive_drift``       how much of the oracle's advantage does mid-run
                         re-planning recover under workload drift?
``ivm_integration``      do IVM and S/C compose (paper §VII's claim)?
=======================  ====================================================
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.experiments import ExperimentResult
from repro.bench.methods import run_method
from repro.core.alternating import AlternatingOptimizer
from repro.core.knapsack_select import select_nodes_mkp
from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.core.speedup import compute_speedup_scores
from repro.engine.adaptive import AdaptiveController
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile
from repro.workloads.five_workloads import (
    WORKLOAD_NAMES,
    build_five_workloads,
)


# ----------------------------------------------------------------------
# Ablation: Algorithm 2 convergence criterion (size vs score)
# ----------------------------------------------------------------------
def ablation_convergence(scale_gb: float = 100.0) -> ExperimentResult:
    """Total flagged score under both convergence tests, per workload."""
    graphs = build_five_workloads(scale_gb=scale_gb)
    budget = 0.016 * scale_gb
    rows = []
    scores: dict = {}
    for name in WORKLOAD_NAMES:
        graph = graphs[name]
        per_criterion = {}
        for criterion in ("size", "score"):
            optimizer = AlternatingOptimizer(convergence=criterion)
            problem = ScProblem(graph=graph, memory_budget=budget)
            result = optimizer.optimize(problem)
            per_criterion[criterion] = result.total_score
        scores[name] = per_criterion
        rows.append([name, per_criterion["size"], per_criterion["score"]])
    return ExperimentResult(
        experiment_id="ablation_convergence",
        title="Algorithm 2 convergence criterion: total flagged score",
        headers=["workload", "size-based (paper)", "score-based"],
        rows=rows,
        data={"scores": scores},
    )


# ----------------------------------------------------------------------
# Ablation: MKP branch-and-bound tolerance
# ----------------------------------------------------------------------
def ablation_tolerance(scale_gb: float = 100.0) -> ExperimentResult:
    """Score obtained with the default 1 % BnB gap vs exact solving."""
    graphs = build_five_workloads(scale_gb=scale_gb)
    budget = 0.016 * scale_gb
    rows = []
    scores: dict = {}
    for name in WORKLOAD_NAMES:
        graph = graphs[name]
        per_tolerance = {}
        for label, tolerance in (("1% gap", 0.01), ("exact", 0.0)):
            def selector(problem, order, _tol=tolerance):
                return select_nodes_mkp(problem, order,
                                        tolerance=_tol).flagged

            optimizer = AlternatingOptimizer(node_selector=selector)
            problem = ScProblem(graph=graph, memory_budget=budget)
            per_tolerance[label] = optimizer.optimize(problem).total_score
        scores[name] = per_tolerance
        rows.append([name, per_tolerance["1% gap"],
                     per_tolerance["exact"]])
    return ExperimentResult(
        experiment_id="ablation_tolerance",
        title="MKP optimality gap: flagged score at 1% tolerance vs exact",
        headers=["workload", "1% gap (default)", "exact"],
        rows=rows,
        data={"scores": scores},
    )


# ----------------------------------------------------------------------
# Sensitivity: background channel assumptions
# ----------------------------------------------------------------------
def sensitivity_background(scale_gb: float = 100.0) -> ExperimentResult:
    """S/C speedup across interference / parallelism assumptions."""
    base_profile = DeviceProfile()
    budget = 0.016 * scale_gb
    settings = [
        ("interference 0%", replace(base_profile,
                                    background_interference=0.0)),
        ("interference 2% (default)", base_profile),
        ("interference 10%", replace(base_profile,
                                     background_interference=0.10)),
        ("parallelism 1x", replace(base_profile,
                                   background_parallelism=1.0)),
        ("parallelism 4x", replace(base_profile,
                                   background_parallelism=4.0)),
    ]
    rows = []
    speedups: dict = {}
    for label, profile in settings:
        graphs = build_five_workloads(scale_gb=scale_gb,
                                      cost_model=profile)
        total_none = total_sc = 0.0
        for name in WORKLOAD_NAMES:
            graph = graphs[name]
            total_none += run_method(graph, budget, "none",
                                     profile=profile).end_to_end_time
            total_sc += run_method(graph, budget, "sc",
                                   profile=profile).end_to_end_time
        speedup = total_none / total_sc
        speedups[label] = speedup
        rows.append([label, total_none, total_sc, speedup])
    return ExperimentResult(
        experiment_id="sensitivity_background",
        title=f"S/C speedup vs background-channel assumptions "
              f"({scale_gb:g}GB TPC-DS, 1.6% catalog)",
        headers=["assumption", "no-opt total (s)", "S/C total (s)",
                 "speedup"],
        rows=rows,
        data={"speedups": speedups},
    )


# ----------------------------------------------------------------------
# Extension: workload drift and adaptive re-planning
# ----------------------------------------------------------------------
def _drift_graph(n: int = 12, size: float = 0.8) -> DependencyGraph:
    """A pipeline-shaped graph for drift experiments."""
    graph = DependencyGraph()
    for i in range(n):
        graph.add_node(f"j{i}", size=size * (0.8 + 0.05 * (i % 5)),
                       compute_time=1.5)
        if i:
            graph.add_edge(f"j{i - 1}", f"j{i}")
        if i >= 2 and i % 3 == 0:
            graph.add_edge(f"j{i - 2}", f"j{i}")
    compute_speedup_scores(graph, DeviceProfile())
    return graph


def adaptive_drift(factors: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0),
                   ) -> ExperimentResult:
    """Stale vs adaptive vs oracle wall-clock across drift factors."""
    graph = _drift_graph()
    budget = 2.0
    controller = AdaptiveController(drift_threshold=0.2, check_window=3)
    rows = []
    times: dict = {}
    for factor in factors:
        truth = {v: factor * graph.size_of(v) for v in graph.nodes()}
        stale = controller.stale_time(graph, truth, budget)
        adaptive = controller.refresh(graph, truth, budget)
        oracle = controller.oracle_time(graph, truth, budget)
        times[factor] = {"stale": stale, "adaptive": adaptive.total_time,
                         "oracle": oracle,
                         "replans": adaptive.n_replans}
        rows.append([f"{factor:g}x", stale, adaptive.total_time, oracle,
                     adaptive.n_replans])
    return ExperimentResult(
        experiment_id="adaptive_drift",
        title="Workload drift: stale plan vs adaptive re-planning vs "
              "oracle (s)",
        headers=["true/estimated size", "stale", "adaptive", "oracle",
                 "re-plans"],
        rows=rows,
        data={"times": times},
    )


# ----------------------------------------------------------------------
# Extension: IVM compatibility (paper §VII)
# ----------------------------------------------------------------------
def ivm_integration(scale_gb: float = 100.0,
                    delta_fraction: float = 0.08) -> ExperimentResult:
    """Full refresh vs IVM, each with and without S/C.

    IVM is emulated on the Table III workloads by shrinking every node's
    refresh bytes (and, via calibration, its compute) to the incremental
    delta fraction — the regime the real :mod:`repro.ivm` machinery
    produces, demonstrated end-to-end in its tests and example. The claim
    under test is the paper's §VII: the two techniques compose.
    """
    budget = 0.016 * scale_gb
    profile = DeviceProfile()
    graphs = build_five_workloads(scale_gb=scale_gb)
    totals = {"full/no-opt": 0.0, "full/S-C": 0.0,
              "ivm/no-opt": 0.0, "ivm/S-C": 0.0}
    for name in WORKLOAD_NAMES:
        full = graphs[name]
        incremental = full.copy()
        for node_id in incremental.nodes():
            node = incremental.node(node_id)
            node.size *= delta_fraction
            node.compute_time = (node.compute_time or 0.0) * delta_fraction
            node.meta["base_input_gb"] = \
                float(node.meta.get("base_input_gb", 0.0)) * delta_fraction
        compute_speedup_scores(incremental, profile)
        totals["full/no-opt"] += run_method(
            full, budget, "none", profile=profile).end_to_end_time
        totals["full/S-C"] += run_method(
            full, budget, "sc", profile=profile).end_to_end_time
        totals["ivm/no-opt"] += run_method(
            incremental, budget, "none", profile=profile).end_to_end_time
        totals["ivm/S-C"] += run_method(
            incremental, budget, "sc", profile=profile).end_to_end_time
    rows = [[label, value,
             totals["full/no-opt"] / value]
            for label, value in totals.items()]
    return ExperimentResult(
        experiment_id="ivm_integration",
        title=f"IVM and S/C compose ({scale_gb:g}GB, "
              f"{100 * delta_fraction:g}% daily delta): total refresh "
              "time of the five workloads",
        headers=["configuration", "total time (s)",
                 "speedup vs full/no-opt"],
        rows=rows,
        data={"totals": totals},
    )
