"""Method registry shared by the experiment drivers.

Two method sets mirror the paper's comparisons:

* **Figure 9** — S/C against off-the-shelf alternatives: no optimization,
  a bigger LRU cache, and Random/Greedy/Ratio node selection without
  reordering.
* **Figure 12** — the ablation grid: each subproblem solution swapped for
  a baseline inside the full alternating loop.
"""

from __future__ import annotations

from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import RunTrace
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile

#: (method key, display label) in the order Figure 9 plots them.
FIGURE9_METHODS: tuple[tuple[str, str], ...] = (
    ("none", "No optimization"),
    ("lru", "LRU Cache"),
    ("random", "Random"),
    ("greedy", "Greedy"),
    ("ratio", "Ratio-based selection"),
    ("sc", "S/C (Ours)"),
)

#: (method key, display label) in the order Figure 12 plots them.
FIGURE12_METHODS: tuple[tuple[str, str], ...] = (
    ("none", "No Opt"),
    ("random+madfs", "Random + MA-DFS"),
    ("greedy+madfs", "Greedy + MA-DFS"),
    ("ratio+madfs", "Ratio + MA-DFS"),
    ("mkp+sa", "MKP + SA"),
    ("mkp+separator", "MKP + Separator"),
    ("mkp+madfs", "MKP + MA-DFS (Ours)"),
)


def run_method(graph: DependencyGraph, memory_budget: float, method: str,
               profile: DeviceProfile | None = None, seed: int = 0,
               options: SimulatorOptions | None = None,
               backend: str | None = None, workers: int = 1) -> RunTrace:
    """Optimize (when applicable) and execute one refresh run.

    ``backend``/``workers`` select the execution backend (default: the
    serial simulator; ``backend="parallel"`` runs the memory-bounded
    parallel scheduler with ``workers`` logical workers).
    """
    controller = Controller(profile=profile or DeviceProfile(),
                            options=options or SimulatorOptions())
    return controller.refresh(graph, memory_budget, method=method,
                              seed=seed, backend=backend, workers=workers)
