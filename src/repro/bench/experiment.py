"""Declarative experiment matrices: config in, trial specs out.

A matrix config (TOML or JSON) declares *axes* — lists of values for
backend, workload, RAM fraction, spill codec, feedback arm, the
compressed-in-RAM rung, and seed — plus fixed knobs shared by every
cell.  :func:`expand_matrix` takes their cartesian product and prunes
the structurally impossible cells (the LRU baseline supports no tiers,
MiniDB runs only the SQL demo workload), leaving the list of
:class:`TrialSpec` cells the orchestrator executes.

The config format (``benchmarks/matrix_smoke.toml`` is the committed
example)::

    [experiment]
    name = "matrix-smoke"
    title = "..."

    [axes]
    backend = ["simulator", "parallel", "lru", "minidb"]
    workload = ["io1", "demo"]
    ram_fraction = [0.5]
    codec = ["none", "zlib"]
    feedback = ["off", "replan"]
    rung = [false, true]
    seed = [0]

    [fixed]
    scale_gb = 2.0
    workers = 1

    [run]
    jobs = 2
    trial_timeout_s = 120

Configs parse with :mod:`tomllib` where available (Python >= 3.11); a
minimal built-in TOML subset parser covers older interpreters so the
orchestrator needs nothing outside the standard library.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, fields

from repro.errors import ValidationError
from repro.store.config import SPILL_CODECS
from repro.workloads.five_workloads import WORKLOAD_NAMES

#: The SQL workload name routing a cell to the real MiniDB backend.
DEMO_WORKLOAD = "demo"

#: Allowed values of the ``feedback`` axis: ``off`` executes the
#: tier-aware plan once; ``replan`` runs the two-pass loop (execute,
#: distill observed tier costs, re-plan, execute again — the second
#: pass is the reported one).
FEEDBACK_ARMS = ("off", "replan")

#: Backends whose workloads are dependency-graph JSON (vs MiniDB SQL).
GRAPH_BACKENDS = ("simulator", "parallel", "lru")


@dataclass(frozen=True)
class TrialSpec:
    """One cell of the matrix — everything a trial needs to run.

    ``trial_id`` is a stable slug of the knobs; it names the cell's
    result file, so a resumed run recognizes completed cells across
    processes.
    """

    backend: str
    workload: str
    ram_fraction: float
    codec: str
    feedback: str
    rung: bool
    seed: int
    workers: int = 1
    method: str = "sc"

    @property
    def trial_id(self) -> str:
        rung = "-rung" if self.rung else ""
        return (f"{self.backend}-{self.workload}-f{self.ram_fraction:g}"
                f"-{self.codec}-fb{self.feedback}{rung}-s{self.seed}")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialSpec":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass(frozen=True)
class MatrixConfig:
    """A parsed experiment config: axes + fixed knobs + run policy."""

    name: str
    title: str
    backends: tuple[str, ...]
    workloads: tuple[str, ...]
    ram_fractions: tuple[float, ...]
    codecs: tuple[str, ...] = ("none",)
    feedback: tuple[str, ...] = ("off",)
    rung: tuple[bool, ...] = (False,)
    seeds: tuple[int, ...] = (0,)
    # fixed knobs shared by every cell
    scale_gb: float = 2.0
    workers: int = 1
    method: str = "sc"
    policy: str = "cost"
    ssd_fraction: float = 0.5
    rung_fraction: float = 0.25
    minidb_rows: int = 4000
    # run policy
    jobs: int = 2
    trial_timeout_s: float | None = 120.0

    def to_dict(self) -> dict:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return {key: list(value) if isinstance(value, tuple) else value
                for key, value in payload.items()}

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "MatrixConfig":
        """Build from the nested ``experiment``/``axes``/``fixed``/
        ``run`` table layout (unknown keys rejected loudly)."""
        experiment = dict(payload.get("experiment", {}))
        axes = dict(payload.get("axes", {}))
        fixed = dict(payload.get("fixed", {}))
        run = dict(payload.get("run", {}))
        extra = set(payload) - {"experiment", "axes", "fixed", "run"}
        if extra:
            raise ValidationError(
                f"unknown config sections {sorted(extra)}; expected "
                f"[experiment], [axes], [fixed], [run]")

        def take(table, table_name, key, default=None, required=False):
            if required and key not in table:
                raise ValidationError(
                    f"config [{table_name}] is missing {key!r}")
            return table.pop(key, default)

        name = take(experiment, "experiment", "name", required=True)
        title = take(experiment, "experiment", "title", default=name)
        kwargs = dict(
            name=name, title=title,
            backends=tuple(take(axes, "axes", "backend", required=True)),
            workloads=tuple(take(axes, "axes", "workload", required=True)),
            ram_fractions=tuple(take(axes, "axes", "ram_fraction",
                                     required=True)),
            codecs=tuple(take(axes, "axes", "codec", ["none"])),
            feedback=tuple(take(axes, "axes", "feedback", ["off"])),
            rung=tuple(bool(v) for v in take(axes, "axes", "rung",
                                             [False])),
            seeds=tuple(take(axes, "axes", "seed", [0])),
        )
        for key in ("scale_gb", "workers", "method", "policy",
                    "ssd_fraction", "rung_fraction", "minidb_rows"):
            if key in fixed:
                kwargs[key] = fixed.pop(key)
        for key in ("jobs", "trial_timeout_s"):
            if key in run:
                kwargs[key] = run.pop(key)
        for table_name, table in (("experiment", experiment),
                                  ("axes", axes), ("fixed", fixed),
                                  ("run", run)):
            if table:
                raise ValidationError(
                    f"unknown keys in config [{table_name}]: "
                    f"{sorted(table)}")
        config = cls(**kwargs)
        config.validate()
        return config

    def validate(self) -> None:
        known_backends = set(GRAPH_BACKENDS) | {"minidb"}
        for backend in self.backends:
            if backend not in known_backends:
                raise ValidationError(
                    f"unknown backend {backend!r}; choose from "
                    f"{sorted(known_backends)}")
        known_workloads = set(WORKLOAD_NAMES) | {DEMO_WORKLOAD}
        for workload in self.workloads:
            if workload not in known_workloads:
                raise ValidationError(
                    f"unknown workload {workload!r}; choose from "
                    f"{sorted(known_workloads)}")
        for codec in self.codecs:
            if codec not in SPILL_CODECS:
                raise ValidationError(
                    f"unknown codec {codec!r}; choose from "
                    f"{sorted(SPILL_CODECS)}")
        for arm in self.feedback:
            if arm not in FEEDBACK_ARMS:
                raise ValidationError(
                    f"unknown feedback arm {arm!r}; choose from "
                    f"{FEEDBACK_ARMS}")
        for fraction in self.ram_fractions:
            if not 0 < fraction <= 1:
                raise ValidationError(
                    f"ram_fraction {fraction!r} must be in (0, 1]")
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")
        if self.jobs < 1:
            raise ValidationError("jobs must be >= 1")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ValidationError("trial_timeout_s must be positive")


@dataclass(frozen=True)
class PrunedCell:
    """A cartesian-product cell dropped as structurally impossible."""

    spec: TrialSpec
    reason: str


def _incompatibility(spec: TrialSpec) -> str | None:
    """Why this cell cannot exist, or None when it can run."""
    if spec.backend == "lru":
        # the plan-free baseline supports neither tiers nor feedback,
        # so exactly one (codec=none, feedback=off, rung=off) cell
        # survives per (workload, fraction, seed)
        if spec.codec != "none":
            return "lru baseline has no tiers to compress"
        if spec.feedback != "off":
            return "lru baseline plans nothing to replan"
        if spec.rung:
            return "lru baseline has no tiers for a rung"
        if spec.workload == DEMO_WORKLOAD:
            return "lru baseline runs graph workloads, not MiniDB SQL"
        return None
    if spec.backend == "minidb":
        if spec.workload != DEMO_WORKLOAD:
            return ("minidb runs the SQL demo workload, not graph "
                    "workloads")
        if spec.feedback != "off":
            return "minidb cells run single-pass (wall-clock replans " \
                   "are not comparable across passes)"
        return None
    # simulated graph backends
    if spec.workload == DEMO_WORKLOAD:
        return f"{spec.backend} runs graph workloads, not MiniDB SQL"
    return None


def expand_matrix(config: MatrixConfig
                  ) -> tuple[list[TrialSpec], list[PrunedCell]]:
    """Cartesian product of the axes, split into runnable trials and
    pruned (structurally impossible) cells.

    Returns ``(trials, pruned)`` with trials in deterministic
    ``trial_id`` order.
    """
    trials: list[TrialSpec] = []
    pruned: list[PrunedCell] = []
    for (backend, workload, fraction, codec, feedback, rung,
         seed) in itertools.product(
            config.backends, config.workloads, config.ram_fractions,
            config.codecs, config.feedback, config.rung, config.seeds):
        spec = TrialSpec(
            backend=backend, workload=workload, ram_fraction=fraction,
            codec=codec, feedback=feedback, rung=rung, seed=seed,
            workers=config.workers,
            method="lru" if backend == "lru" else config.method)
        reason = _incompatibility(spec)
        if reason is None:
            trials.append(spec)
        else:
            pruned.append(PrunedCell(spec, reason))
    trials.sort(key=lambda spec: spec.trial_id)
    pruned.sort(key=lambda cell: cell.spec.trial_id)
    seen: dict[str, TrialSpec] = {}
    for spec in trials:
        if spec.trial_id in seen:
            raise ValidationError(
                f"duplicate trial id {spec.trial_id!r}: axes contain "
                f"repeated values")
        seen[spec.trial_id] = spec
    return trials, pruned


# ----------------------------------------------------------------------
# config file loading
# ----------------------------------------------------------------------
def load_config(path: str) -> MatrixConfig:
    """Parse a matrix config file (``.toml`` or ``.json``)."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    if str(path).endswith(".json"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"cannot parse {path}: {exc}") from exc
    else:
        payload = parse_toml(text, name=str(path))
    return MatrixConfig.from_dict(payload)


def parse_toml(text: str, name: str = "config") -> dict:
    """Parse TOML via :mod:`tomllib`, falling back to the built-in
    subset parser on interpreters without it (Python < 3.11)."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - version dependent
        return _parse_simple_toml(text, name=name)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValidationError(f"cannot parse {name}: {exc}") from exc


def _parse_simple_toml(text: str, name: str = "config") -> dict:
    """A minimal TOML subset: ``[section]`` tables and ``key = value``
    pairs whose values are strings, numbers, booleans, or single-line
    arrays of those.  Enough for matrix configs on Python 3.10."""
    root: dict = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            key = line[1:-1].strip()
            if not key or key.startswith("["):
                raise ValidationError(
                    f"{name}:{lineno}: unsupported table header {line!r}")
            table = root.setdefault(key, {})
            continue
        if "=" not in line:
            raise ValidationError(
                f"{name}:{lineno}: expected 'key = value', got {line!r}")
        key, _, value = line.partition("=")
        table[key.strip()] = _parse_toml_value(value.strip(),
                                               f"{name}:{lineno}")
    return root


def _strip_toml_comment(line: str) -> str:
    in_string: str | None = None
    for index, char in enumerate(line):
        if in_string:
            if char == in_string:
                in_string = None
        elif char in "\"'":
            in_string = char
        elif char == "#":
            return line[:index]
    return line


def _parse_toml_value(text: str, where: str):
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(part.strip(), where)
                for part in _split_toml_array(inner, where)]
    if (len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValidationError(
            f"{where}: unsupported TOML value {text!r}") from None


def _split_toml_array(inner: str, where: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_string: str | None = None
    current = ""
    for char in inner:
        if in_string:
            current += char
            if char == in_string:
                in_string = None
        elif char in "\"'":
            in_string = char
            current += char
        elif char == "[":
            depth += 1
            current += char
        elif char == "]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += char
    if in_string or depth:
        raise ValidationError(f"{where}: unterminated array")
    if current.strip():
        parts.append(current)
    return parts
