"""Tests for delta propagation rules (repro.ivm.rules).

Every rule is validated against the semantic ground truth: applying the
output delta to the operator's old output must equal running the operator
on the new input.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.expressions import BinOp, Col, Lit, Projection
from repro.db.operators import filter_rows, hash_join, project, union_all
from repro.db.table import Table
from repro.ivm.delta import SignedDelta, apply_delta
from repro.ivm.rules import (
    delta_filter,
    delta_join,
    delta_project,
    delta_union,
)


def multiset(table: Table) -> list[str]:
    return sorted(map(repr, table.to_pylist()))


def make(keys, vals) -> Table:
    return Table.from_dict({"k": np.array(keys, dtype=np.int64),
                            "v": np.array(vals, dtype=np.int64)})


PRED = BinOp(">", Col("v"), Lit(0))
PROJS = [Projection(Col("k"), "k"),
         Projection(BinOp("*", Col("v"), Lit(2)), "v2")]


class TestFilterRule:
    def test_matches_recompute(self):
        old = make([1, 2, 3], [5, -1, 2])
        delta = SignedDelta.from_changes(make([4], [7]), make([1], [5]))
        out_delta = delta_filter(delta, PRED)
        maintained = apply_delta(filter_rows(old, PRED), out_delta)
        recomputed = filter_rows(apply_delta(old, delta), PRED)
        assert multiset(maintained) == multiset(recomputed)

    def test_empty_delta_passthrough(self):
        delta = SignedDelta.empty(make([], []))
        assert delta_filter(delta, PRED).is_empty


class TestProjectRule:
    def test_matches_recompute(self):
        old = make([1, 2], [5, 6])
        delta = SignedDelta.from_changes(make([3], [7]), make([2], [6]))
        out_delta = delta_project(delta, PROJS)
        maintained = apply_delta(project(old, PROJS), out_delta)
        recomputed = project(apply_delta(old, delta), PROJS)
        assert multiset(maintained) == multiset(recomputed)

    def test_duplicate_producing_projection(self):
        # projecting away v can make rows identical; weights must merge
        old = make([1, 1], [5, 6])
        projs = [Projection(Col("k"), "k")]
        delta = SignedDelta.from_deletes(make([1], [5]))
        out_delta = delta_project(delta, projs)
        maintained = apply_delta(project(old, projs), out_delta)
        assert multiset(maintained) == multiset(make([1], [0]).select(["k"]))


class TestUnionRule:
    def test_matches_recompute(self):
        a_old, b_old = make([1], [1]), make([2], [2])
        da = SignedDelta.from_inserts(make([3], [3]))
        db = SignedDelta.from_deletes(make([2], [2]))
        out_delta = delta_union([da, db])
        maintained = apply_delta(union_all([a_old, b_old]), out_delta)
        recomputed = union_all([apply_delta(a_old, da),
                                apply_delta(b_old, db)])
        assert multiset(maintained) == multiset(recomputed)


def join_tables(left: Table, right: Table) -> Table:
    return hash_join(left, right, "k", "k", right_prefix="r")


class TestJoinRule:
    def left(self):
        return Table.from_dict({"k": np.array([1, 1, 2], dtype=np.int64),
                                "v": np.array([10, 11, 20],
                                              dtype=np.int64)})

    def right(self):
        return Table.from_dict({"k": np.array([1, 2, 2], dtype=np.int64),
                                "w": np.array([100, 200, 201],
                                              dtype=np.int64)})

    def check(self, left_delta: SignedDelta, right_delta: SignedDelta):
        left_old, right_old = self.left(), self.right()
        out_delta = delta_join(left_old, left_delta, right_old,
                               right_delta, "k", "k", right_prefix="r")
        maintained = apply_delta(join_tables(left_old, right_old),
                                 out_delta)
        recomputed = join_tables(apply_delta(left_old, left_delta),
                                 apply_delta(right_old, right_delta))
        assert multiset(maintained) == multiset(recomputed)

    def test_left_insert(self):
        self.check(
            SignedDelta.from_inserts(Table.from_dict({"k": [2], "v": [21]})),
            SignedDelta.empty(self.right()))

    def test_right_insert(self):
        self.check(
            SignedDelta.empty(self.left()),
            SignedDelta.from_inserts(
                Table.from_dict({"k": [1], "w": [101]})))

    def test_both_sides_insert_cross_term(self):
        self.check(
            SignedDelta.from_inserts(Table.from_dict({"k": [5], "v": [50]})),
            SignedDelta.from_inserts(
                Table.from_dict({"k": [5], "w": [500]})))

    def test_left_delete(self):
        self.check(
            SignedDelta.from_deletes(
                Table.from_dict({"k": [1], "v": [10]})),
            SignedDelta.empty(self.right()))

    def test_mixed_insert_delete_both_sides(self):
        self.check(
            SignedDelta.from_changes(
                Table.from_dict({"k": [2], "v": [22]}),
                Table.from_dict({"k": [1], "v": [11]})),
            SignedDelta.from_changes(
                Table.from_dict({"k": [2], "w": [202]}),
                Table.from_dict({"k": [2], "w": [200]})))

    def test_empty_deltas_give_empty_output(self):
        out = delta_join(self.left(), SignedDelta.empty(self.left()),
                         self.right(), SignedDelta.empty(self.right()),
                         "k", "k", right_prefix="r")
        assert out.is_empty


@st.composite
def _join_case(draw):
    def rel(prefix, n):
        keys = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
        vals = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
        return Table.from_dict({
            "k": np.array(keys, dtype=np.int64),
            prefix: np.array(vals, dtype=np.int64)})

    left_old = rel("v", draw(st.integers(0, 6)))
    right_old = rel("w", draw(st.integers(0, 6)))
    left_ins = rel("v", draw(st.integers(0, 3)))
    right_ins = rel("w", draw(st.integers(0, 3)))
    n_del_l = draw(st.integers(0, len(left_old)))
    n_del_r = draw(st.integers(0, len(right_old)))
    left_del = left_old.take(np.arange(n_del_l))
    right_del = right_old.take(np.arange(n_del_r))
    return (left_old, right_old,
            SignedDelta.from_changes(left_ins, left_del),
            SignedDelta.from_changes(right_ins, right_del))


class TestJoinRuleProperty:
    @settings(max_examples=80, deadline=None)
    @given(_join_case())
    def test_incremental_equals_recompute(self, case):
        left_old, right_old, left_delta, right_delta = case
        out_delta = delta_join(left_old, left_delta, right_old,
                               right_delta, "k", "k", right_prefix="r")
        maintained = apply_delta(join_tables(left_old, right_old),
                                 out_delta)
        recomputed = join_tables(apply_delta(left_old, left_delta),
                                 apply_delta(right_old, right_delta))
        assert multiset(maintained) == multiset(recomputed)


class TestValidation:
    def test_filter_requires_boolean(self):
        delta = SignedDelta.from_inserts(make([1], [1]))
        with pytest.raises(Exception):
            delta_filter(delta, BinOp("+", Col("v"), Lit(1)))

    def test_project_reserved_alias(self):
        delta = SignedDelta.from_inserts(make([1], [1]))
        from repro.errors import ValidationError
        from repro.ivm.delta import WEIGHT_COLUMN
        with pytest.raises(ValidationError):
            delta_project(delta, [Projection(Col("k"), WEIGHT_COLUMN)])

    def test_project_empty_list(self):
        from repro.errors import ValidationError
        delta = SignedDelta.from_inserts(make([1], [1]))
        with pytest.raises(ValidationError):
            delta_project(delta, [])
