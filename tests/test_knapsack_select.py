"""Tests for SimplifiedMKP node selection (Algorithm 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knapsack_select import build_mkp_instance, select_nodes_mkp
from repro.core.constraints import get_constraints
from repro.core.problem import ScProblem
from repro.core.residency import is_feasible
from repro.graph.topo import kahn_topological_order
from tests.conftest import make_fig7_problem, make_random_problem


class TestFigure7:
    def test_selection_under_tau1(self):
        problem = make_fig7_problem()
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        result = select_nodes_mkp(problem, tau1)
        # paper: best under τ1 is 120 = {v1, v5, v6} (+ small extras fit:
        # v2 and v4 are only 10GB each and may coexist with v1)
        assert is_feasible(problem.graph, tau1, result.flagged, 100)
        assert not {"v1", "v3"} <= result.flagged
        assert result.total_score >= 120

    def test_selection_under_tau2(self):
        problem = make_fig7_problem()
        tau2 = ["v1", "v2", "v4", "v3", "v5", "v6"]
        result = select_nodes_mkp(problem, tau2)
        assert {"v1", "v3"} <= result.flagged
        assert is_feasible(problem.graph, tau2, result.flagged, 100)
        assert result.total_score >= 210


class TestMkpLayout:
    def test_weights_follow_membership(self):
        problem = make_fig7_problem()
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        constraints = get_constraints(problem, tau1)
        instance, nodes = build_mkp_instance(problem, constraints)
        assert instance.n_items == len(nodes)
        assert instance.n_constraints == len(constraints.sets)
        for row, cset in zip(instance.weights, constraints.sets):
            for weight, node in zip(row, nodes):
                if node in cset:
                    assert weight == problem.size_of(node)
                else:
                    assert weight == 0.0

    def test_round_scores(self):
        problem = make_fig7_problem()
        problem.graph.node("v2").score = 10.4
        problem = ScProblem(graph=problem.graph, memory_budget=100)
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        constraints = get_constraints(problem, tau1)
        instance, nodes = build_mkp_instance(problem, constraints,
                                             round_scores=True)
        if "v2" in nodes:
            assert instance.profits[nodes.index("v2")] == 10.0


class TestEdgeCases:
    def test_zero_budget_flags_nothing_sized(self):
        problem = ScProblem.from_tables(
            edges=[("a", "b")], sizes={"a": 1.0, "b": 2.0},
            scores={"a": 5.0, "b": 5.0}, memory_budget=0.0)
        result = select_nodes_mkp(problem, ["a", "b"])
        assert result.flagged == frozenset()

    def test_all_zero_scores(self):
        problem = ScProblem.from_tables(
            edges=[("a", "b")], sizes={"a": 1.0, "b": 2.0},
            scores={"a": 0.0, "b": 0.0}, memory_budget=10.0)
        result = select_nodes_mkp(problem, ["a", "b"])
        assert result.flagged == frozenset()

    def test_everything_fits(self, diamond_graph):
        problem = ScProblem(graph=diamond_graph, memory_budget=1000.0)
        order = kahn_topological_order(diamond_graph)
        result = select_nodes_mkp(problem, order)
        assert result.flagged == frozenset(diamond_graph.nodes())
        assert result.n_constraints == 0  # all sets trivial


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000),
       budget_fraction=st.floats(0.05, 0.8))
def test_property_selection_always_feasible(seed, budget_fraction):
    problem = make_random_problem(seed, n_nodes=16,
                                  budget_fraction=budget_fraction)
    order = kahn_topological_order(problem.graph)
    result = select_nodes_mkp(problem, order)
    assert is_feasible(problem.graph, order, result.flagged,
                       problem.memory_budget)
    # never flags excluded nodes
    assert not (result.flagged & problem.excluded_nodes())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_selection_dominates_greedy(seed):
    """The exact MKP is at least as good as the greedy scan baseline."""
    from repro.core.selection_baselines import greedy_selection

    problem = make_random_problem(seed, n_nodes=14, budget_fraction=0.3)
    order = kahn_topological_order(problem.graph)
    mkp_score = select_nodes_mkp(problem, order).total_score
    greedy_score = problem.total_score(greedy_selection(problem, order))
    assert mkp_score >= greedy_score * 0.99 - 1e-9
