"""Tests for the Memory Catalog release protocol (paper §III-C)."""

import pytest

from repro.engine.memory_catalog import MemoryCatalog
from repro.errors import BudgetExceededError, CatalogError


class TestInsert:
    def test_budget_enforced(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 6.0, n_consumers=1)
        assert catalog.usage == 6.0
        with pytest.raises(BudgetExceededError) as excinfo:
            catalog.insert("b", 5.0, n_consumers=1)
        assert excinfo.value.requested == 5.0
        assert excinfo.value.available == pytest.approx(4.0)

    def test_duplicate_rejected(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 1.0, n_consumers=1)
        with pytest.raises(CatalogError):
            catalog.insert("a", 1.0, n_consumers=1)

    def test_negative_size_rejected(self):
        catalog = MemoryCatalog(budget=10.0)
        with pytest.raises(CatalogError):
            catalog.insert("a", -1.0, n_consumers=0)

    def test_peak_tracking(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 4.0, n_consumers=0,
                       materialization_pending=True)
        catalog.insert("b", 5.0, n_consumers=0,
                       materialization_pending=True)
        catalog.materialized("a")
        assert catalog.usage == 5.0
        assert catalog.peak_usage == 9.0


class TestReleaseProtocol:
    def test_release_needs_both_conditions(self):
        """Figure 6, t4: deletion requires consumers done AND durable."""
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("mv1", 4.0, n_consumers=2)
        assert not catalog.consumer_done("mv1")   # 1 consumer left
        assert not catalog.consumer_done("mv1")   # consumers done...
        assert "mv1" in catalog                   # ...but not durable yet
        assert catalog.materialized("mv1")        # now it leaves
        assert "mv1" not in catalog
        assert catalog.usage == 0.0

    def test_materialize_first_then_consumers(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("mv1", 4.0, n_consumers=1)
        assert not catalog.materialized("mv1")
        assert catalog.consumer_done("mv1")

    def test_no_pending_materialization(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("mv1", 4.0, n_consumers=1,
                       materialization_pending=False)
        assert catalog.consumer_done("mv1")

    def test_zero_consumers_releases_on_materialize(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("sink", 2.0, n_consumers=0)
        assert catalog.materialized("sink")

    def test_over_release_rejected(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 1.0, n_consumers=1)
        catalog.consumer_done("a")
        with pytest.raises(CatalogError):
            catalog.consumer_done("a")

    def test_double_materialize_rejected(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 1.0, n_consumers=1)
        catalog.materialized("a")
        with pytest.raises(CatalogError):
            catalog.materialized("a")

    def test_unknown_table(self):
        catalog = MemoryCatalog(budget=10.0)
        with pytest.raises(CatalogError):
            catalog.consumer_done("ghost")

    def test_force_release(self):
        catalog = MemoryCatalog(budget=10.0)
        catalog.insert("a", 3.0, n_consumers=5)
        catalog.force_release("a")
        assert catalog.usage == 0.0
        assert catalog.resident() == []
