"""Shared fixtures: the paper's toy graphs and randomized instances."""

from __future__ import annotations

import random

import pytest

from repro.core.problem import ScProblem
from repro.graph.dag import DependencyGraph


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "random_invariants: seeded randomized ledger-invariant harness "
        "(CI runs it as a dedicated job with a fixed seed matrix)")


def make_fig7_problem() -> ScProblem:
    """Figure 7's toy instance.

    Six nodes; ``v1`` and ``v3`` are the 100 GB nodes; with M = 100 GB the
    best order (τ2: v4 before v3) allows flagging {v1, v3, v6} for the
    paper's stated maximum score of 210, while a bad order caps at 120.
    """
    return ScProblem.from_tables(
        edges=[("v1", "v2"), ("v1", "v4"), ("v2", "v3"), ("v3", "v5"),
               ("v5", "v6")],
        sizes={"v1": 100, "v2": 10, "v3": 100, "v4": 10, "v5": 10,
               "v6": 10},
        scores={"v1": 100, "v2": 10, "v3": 100, "v4": 10, "v5": 10,
                "v6": 10},
        memory_budget=100,
    )


def make_fig8_problem() -> ScProblem:
    """Figure 8-shaped instance: tie-breaking between an unflagged large
    branch (v2) and a flagged one (v3) decides whether v6 can be flagged.
    """
    return ScProblem.from_tables(
        edges=[("v1", "v2"), ("v1", "v3"), ("v2", "v4"), ("v3", "v5"),
               ("v5", "v6"), ("v4", "v7"), ("v6", "v7")],
        sizes={"v1": 20, "v2": 100, "v3": 80, "v4": 80, "v5": 20,
               "v6": 20, "v7": 100},
        scores={"v1": 20, "v2": 100, "v3": 80, "v4": 80, "v5": 20,
                "v6": 20, "v7": 100},
        memory_budget=100,
    )


def make_random_problem(seed: int, n_nodes: int = 20,
                        budget_fraction: float = 0.3) -> ScProblem:
    """A random layered-DAG problem with positive sizes and scores."""
    from repro.graph.generators import LayeredDagConfig, \
        generate_layered_dag

    rng = random.Random(seed)
    graph = generate_layered_dag(
        LayeredDagConfig(n_nodes=n_nodes,
                         height_width_ratio=rng.choice([0.5, 1.0, 2.0]),
                         max_outdegree=rng.randint(1, 4)),
        seed=seed)
    for node_id in graph.nodes():
        node = graph.node(node_id)
        node.size = rng.uniform(0.1, 10.0)
        node.score = rng.uniform(0.0, 20.0)
    budget = budget_fraction * graph.total_size()
    return ScProblem(graph=graph, memory_budget=budget)


@pytest.fixture
def fig7_problem() -> ScProblem:
    return make_fig7_problem()


@pytest.fixture
def fig8_problem() -> ScProblem:
    return make_fig8_problem()


@pytest.fixture
def diamond_graph() -> DependencyGraph:
    """a -> b, a -> c, b -> d, c -> d with distinct sizes."""
    graph = DependencyGraph()
    for node_id, size in (("a", 4.0), ("b", 2.0), ("c", 3.0), ("d", 1.0)):
        graph.add_node(node_id, size=size, score=size)
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    return graph


@pytest.fixture
def chain_graph() -> DependencyGraph:
    """a -> b -> c -> d."""
    graph = DependencyGraph()
    for node_id in "abcd":
        graph.add_node(node_id, size=1.0, score=1.0)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("c", "d")
    return graph
