"""Tests for the DP knapsack path and the Lagrangian bound, certified
against the exhaustive reference solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.solver.brute import solve_mkp_brute_force
from repro.solver.dp import (
    collapses_to_single_constraint,
    solve_knapsack_dp,
    solve_mkp_dp,
)
from repro.solver.lagrangian import lagrangian_bound
from repro.solver.mkp import MkpInstance, solve_mkp


def single_row_instance(profits, weights, capacity) -> MkpInstance:
    return MkpInstance.from_lists(profits, [weights], [capacity])


class TestKnapsackDp:
    def test_textbook_instance(self):
        solution = solve_knapsack_dp([60, 100, 120], [1, 2, 3], 5.0)
        assert solution.objective == pytest.approx(220)
        assert set(solution.selected) == {1, 2}

    def test_zero_capacity_takes_only_free_items(self):
        solution = solve_knapsack_dp([5, 7], [0.0, 1.0], 0.0)
        assert set(solution.selected) == {0}

    def test_never_violates_capacity(self):
        solution = solve_knapsack_dp([10, 10, 10], [0.4, 0.4, 0.4], 1.0)
        assert len(solution.selected) == 2

    def test_rounding_up_is_conservative(self):
        # weights 0.34 * 3 = 1.02 > 1: only two fit
        solution = solve_knapsack_dp([1, 1, 1], [0.34, 0.34, 0.34], 1.0,
                                     resolution=100)
        assert len(solution.selected) == 2

    def test_negative_profit_skipped(self):
        solution = solve_knapsack_dp([-5, 3], [0.1, 0.1], 1.0)
        assert solution.selected == (1,)

    def test_validation(self):
        with pytest.raises(ValidationError):
            solve_knapsack_dp([1], [1, 2], 1.0)
        with pytest.raises(ValidationError):
            solve_knapsack_dp([1], [1], -1.0)
        with pytest.raises(ValidationError):
            solve_knapsack_dp([1], [-1], 1.0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.0, 20.0), st.floats(0.0, 5.0)),
                    min_size=1, max_size=10),
           st.floats(0.5, 8.0))
    def test_matches_brute_force(self, items, capacity):
        profits = [p for p, _ in items]
        weights = [w for _, w in items]
        dp = solve_knapsack_dp(profits, weights, capacity,
                               resolution=50_000)
        brute = solve_mkp_brute_force(
            single_row_instance(profits, weights, capacity))
        # DP discretization may lose a sliver; it must never overshoot
        assert dp.objective <= brute.objective + 1e-9
        assert dp.objective >= brute.objective - 1e-6 - \
            0.001 * brute.objective


class TestCollapseDetection:
    def test_single_row_collapses(self):
        inst = single_row_instance([1, 2], [1, 1], 2.0)
        assert collapses_to_single_constraint(inst)

    def test_dominating_row_detected(self):
        inst = MkpInstance.from_lists(
            [1, 2, 3],
            [[2, 2, 2], [1, 1, 1]],  # row 0 dominates row 1
            [5.0, 5.0])
        assert collapses_to_single_constraint(inst)

    def test_incomparable_rows_do_not_collapse(self):
        inst = MkpInstance.from_lists(
            [1, 2],
            [[2, 0], [0, 2]],
            [2.0, 2.0])
        assert not collapses_to_single_constraint(inst)

    def test_solve_mkp_dp_returns_none_without_collapse(self):
        inst = MkpInstance.from_lists(
            [1, 2], [[2, 0], [0, 2]], [2.0, 2.0])
        assert solve_mkp_dp(inst) is None

    def test_solve_mkp_dp_matches_bnb_on_collapse(self):
        inst = MkpInstance.from_lists(
            [8, 7, 6, 5],
            [[3, 3, 2, 2], [1, 1, 1, 1]],
            [6.0, 6.0])
        dp = solve_mkp_dp(inst, resolution=60_000)
        bnb = solve_mkp(inst, tolerance=0.0)
        assert dp is not None
        assert dp.objective == pytest.approx(bnb.objective, rel=1e-3)
        assert inst.is_feasible(dp.selected)


class TestLagrangianBound:
    def test_bounds_brute_force_from_above(self):
        inst = MkpInstance.from_lists(
            [10, 8, 6, 4],
            [[3, 2, 2, 1], [1, 2, 3, 1]],
            [4.0, 4.0])
        bound = lagrangian_bound(inst, iterations=60)
        brute = solve_mkp_brute_force(inst)
        assert bound.bound >= brute.objective - 1e-9

    def test_tightens_over_iterations(self):
        inst = MkpInstance.from_lists(
            [10, 8, 6, 4, 9, 2],
            [[3, 2, 2, 1, 3, 1], [1, 2, 3, 1, 2, 2]],
            [4.0, 4.0])
        loose = lagrangian_bound(inst, iterations=1)
        tight = lagrangian_bound(inst, iterations=80)
        assert tight.bound <= loose.bound + 1e-9

    def test_no_rows_returns_profit_sum(self):
        inst = MkpInstance.from_lists([3, 0, 2], [], [])
        assert lagrangian_bound(inst).bound == pytest.approx(5.0)

    def test_validation(self):
        inst = MkpInstance.from_lists([1], [[1]], [1.0])
        with pytest.raises(ValidationError):
            lagrangian_bound(inst, keep_row=5)
        with pytest.raises(ValidationError):
            lagrangian_bound(inst, iterations=0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_always_upper_bound_on_random_instances(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 8)
        rows = rng.randint(1, 3)
        profits = [rng.uniform(0, 10) for _ in range(n)]
        weights = [[rng.uniform(0, 3) for _ in range(n)]
                   for _ in range(rows)]
        capacities = [rng.uniform(1, 6) for _ in range(rows)]
        inst = MkpInstance.from_lists(profits, weights, capacities)
        bound = lagrangian_bound(inst, iterations=30)
        brute = solve_mkp_brute_force(inst)
        assert bound.bound >= brute.objective - 1e-6
