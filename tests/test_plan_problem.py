"""Tests for Plan and ScProblem containers."""

import pytest

from repro.core.plan import Plan
from repro.core.problem import ScProblem
from repro.errors import (
    GraphError,
    InfeasiblePlanError,
    ValidationError,
)
from tests.conftest import make_fig7_problem


class TestPlan:
    def test_flagged_must_be_in_order(self):
        with pytest.raises(GraphError):
            Plan(order=("a", "b"), flagged=frozenset({"ghost"}))

    def test_unoptimized_plan(self):
        plan = Plan.unoptimized(["a", "b"])
        assert plan.flagged == frozenset()
        assert not plan.is_flagged("a")

    def test_positions(self):
        plan = Plan.make(["a", "b", "c"], {"b"})
        assert plan.position("b") == 1
        assert plan.positions() == {"a": 0, "b": 1, "c": 2}
        with pytest.raises(GraphError):
            plan.position("ghost")

    def test_json_round_trip(self):
        plan = Plan.make(["x", "y", "z"], {"y", "z"})
        restored = Plan.from_json(plan.to_json())
        assert restored == plan

    def test_validate_against_graph(self, diamond_graph):
        plan = Plan.make(["a", "b", "c", "d"], {"a"})
        plan.validate_against(diamond_graph)
        bad = Plan.make(["b", "a", "c", "d"], set())
        with pytest.raises(GraphError):
            bad.validate_against(diamond_graph)

    def test_validate_against_budget(self, diamond_graph):
        plan = Plan.make(["a", "b", "c", "d"], {"a", "b"})
        with pytest.raises(InfeasiblePlanError) as excinfo:
            plan.validate_against(diamond_graph, memory_budget=5.0)
        assert excinfo.value.peak == pytest.approx(6.0)
        assert excinfo.value.budget == 5.0
        plan.validate_against(diamond_graph, memory_budget=6.0)


class TestScProblem:
    def test_negative_budget_rejected(self, diamond_graph):
        with pytest.raises(ValidationError):
            ScProblem(graph=diamond_graph, memory_budget=-1.0)

    def test_cyclic_graph_rejected(self):
        from repro.graph.dag import DependencyGraph

        graph = DependencyGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(Exception):
            ScProblem(graph=graph, memory_budget=1.0)

    def test_totals(self):
        problem = make_fig7_problem()
        assert problem.total_score({"v1", "v3"}) == 200
        assert problem.total_size({"v1", "v2"}) == 110
        assert problem.n == 6

    def test_excluded_nodes(self):
        problem = ScProblem.from_tables(
            edges=[("a", "b")],
            sizes={"a": 50.0, "b": 1.0},
            scores={"a": 5.0, "b": 0.0},
            memory_budget=10.0)
        assert problem.excluded_nodes() == {"a", "b"}
