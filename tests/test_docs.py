"""Documentation health: intra-repo markdown links and doctests.

Run by the CI ``docs`` job (and by the tier-1 suite): every relative
link in README/ROADMAP/docs/* must resolve to a real file, and the
doctest examples on the public API must pass.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md")))

#: ``[text](target)`` — good enough for the plain links these docs use.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Modules whose doctests gate the docs job.
DOCTEST_MODULES = ["repro.core.optimizer"]


def _relative_links(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    # fenced code blocks may contain bracket syntax that is not a link
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    links = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_markdown_links_resolve(doc):
    assert doc.exists(), f"{doc} listed but missing"
    broken = [target for target in _relative_links(doc)
              if not (doc.parent / target).exists()]
    assert not broken, f"{doc.name} has broken links: {broken}"


def test_doc_files_list_is_not_empty():
    """The docs satellite exists: README plus at least one docs/ page."""
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert "ARCHITECTURE.md" in names


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctests"
    assert result.failed == 0
