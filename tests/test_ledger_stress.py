"""Randomized-operation stress tests for MemoryLedger invariants.

Single-threaded runs drive seeded random operation schedules against a
shadow model and check after every step that:

* committed usage never exceeds the budget (and matches the shadow);
* usage + outstanding reservations never exceed the budget;
* ``peak_usage`` is monotone non-decreasing and never exceeds budget;
* the release protocol converges — an entry leaves exactly when its
  consumers hit zero *and* its materialization hold cleared, and after
  draining every schedule the ledger is empty.

Multi-threaded runs hammer the same protocol (plus reservations) from
many workers with seeded per-worker schedules while a sampler thread
watches for budget violations.
"""

import random
import threading

import pytest

from repro.errors import CatalogError
from repro.exec.ledger import MemoryLedger

BUDGET = 100.0


class _Shadow:
    """Reference model: plain dicts, no cleverness."""

    def __init__(self):
        self.entries = {}      # node -> [size, consumers, pending]
        self.reserved = {}

    @property
    def usage(self):
        return sum(size for size, _, _ in self.entries.values())

    def admissible(self, size):
        return (self.usage + sum(self.reserved.values()) + size
                <= BUDGET + 1e-12)


def _check(ledger, shadow, peak_seen):
    assert ledger.usage == pytest.approx(shadow.usage)
    assert ledger.usage <= BUDGET + 1e-9
    assert ledger.usage + ledger.reserved <= BUDGET + 1e-9
    assert ledger.peak_usage >= peak_seen - 1e-12, "peak went backwards"
    assert ledger.peak_usage <= BUDGET + 1e-9
    assert sorted(ledger.resident()) == sorted(shadow.entries)
    return max(peak_seen, ledger.peak_usage)


@pytest.mark.parametrize("seed", range(8))
def test_random_schedule_single_threaded(seed):
    rng = random.Random(seed)
    ledger = MemoryLedger(budget=BUDGET)
    shadow = _Shadow()
    peak = 0.0
    next_id = 0

    for _ in range(600):
        ops = ["insert", "try_insert", "reserve"]
        if shadow.entries:
            ops += ["consumer_done", "materialized", "force_release"] * 2
        if shadow.reserved:
            ops += ["commit_reservation", "cancel_reservation"] * 2
        op = rng.choice(ops)

        if op in ("insert", "try_insert", "reserve"):
            name = f"t{next_id}"
            next_id += 1
            size = rng.uniform(1.0, 40.0)
            consumers = rng.randint(0, 3)
            pending = rng.random() < 0.7
            fits = shadow.admissible(size)
            if op == "insert":
                if fits:
                    ledger.insert(name, size, consumers, pending)
                    shadow.entries[name] = [size, consumers, pending]
                else:
                    with pytest.raises(CatalogError):
                        ledger.insert(name, size, consumers, pending)
            elif op == "try_insert":
                assert ledger.try_insert(name, size, consumers,
                                         pending) == fits
                if fits:
                    shadow.entries[name] = [size, consumers, pending]
            else:
                assert ledger.reserve(name, size) == fits
                if fits:
                    shadow.reserved[name] = size
        elif op == "commit_reservation":
            name = rng.choice(sorted(shadow.reserved))
            consumers = rng.randint(0, 3)
            pending = rng.random() < 0.7
            ledger.commit_reservation(name, consumers, pending)
            shadow.entries[name] = [shadow.reserved.pop(name), consumers,
                                    pending]
        elif op == "cancel_reservation":
            name = rng.choice(sorted(shadow.reserved))
            ledger.cancel_reservation(name)
            del shadow.reserved[name]
        elif op == "consumer_done":
            name = rng.choice(sorted(shadow.entries))
            entry = shadow.entries[name]
            if entry[1] <= 0:
                with pytest.raises(CatalogError):
                    ledger.consumer_done(name)
            else:
                entry[1] -= 1
                released = entry[1] <= 0 and not entry[2]
                assert ledger.consumer_done(name) == released
                if released:
                    del shadow.entries[name]
        elif op == "materialized":
            name = rng.choice(sorted(shadow.entries))
            entry = shadow.entries[name]
            if not entry[2]:
                with pytest.raises(CatalogError):
                    ledger.materialized(name)
            else:
                entry[2] = False
                released = entry[1] <= 0
                assert ledger.materialized(name) == released
                if released:
                    del shadow.entries[name]
        else:  # force_release
            name = rng.choice(sorted(shadow.entries))
            ledger.force_release(name)
            del shadow.entries[name]

        peak = _check(ledger, shadow, peak)

    # convergence: draining every outstanding hold empties the ledger
    for name in sorted(shadow.reserved):
        ledger.cancel_reservation(name)
    for name, entry in sorted(shadow.entries.items()):
        if entry[2]:
            ledger.materialized(name)
        while name in ledger and entry[1] > 0:
            ledger.consumer_done(name)
            entry[1] -= 1
        if name in ledger:  # 0 consumers and no hold: only force works
            ledger.force_release(name)
    assert ledger.usage == pytest.approx(0.0)
    assert ledger.reserved == 0.0
    assert not ledger.resident()


@pytest.mark.parametrize("seed", [0, 1])
def test_random_schedule_multi_threaded(seed):
    """Seeded per-worker schedules; a sampler watches the budget."""
    ledger = MemoryLedger(budget=BUDGET)
    violations = []
    errors = []
    stop = threading.Event()

    def sampler():
        while not stop.is_set():
            usage, reserved = ledger.usage, ledger.reserved
            if usage > BUDGET + 1e-9:
                violations.append(("usage", usage))
            if usage + reserved > BUDGET + 1e-9 + 40.0:
                # usage and reserved are read unlocked in sequence, so a
                # release between the reads can overshoot by at most one
                # max-sized entry; a violation beyond that is real
                violations.append(("admission", usage + reserved))

    def worker(worker_id):
        rng = random.Random(1000 * seed + worker_id)
        try:
            for i in range(400):
                name = f"w{worker_id}-{i}"
                size = rng.uniform(1.0, 40.0)
                consumers = rng.randint(0, 2)
                if rng.random() < 0.5:
                    if not ledger.try_insert(name, size, consumers,
                                             materialization_pending=True):
                        continue
                else:
                    if not ledger.reserve(name, size):
                        continue
                    if rng.random() < 0.2:
                        ledger.cancel_reservation(name)
                        continue
                    ledger.commit_reservation(name, consumers,
                                              materialization_pending=True)
                released = ledger.materialized(name)
                for _ in range(consumers):
                    assert not released
                    released = ledger.consumer_done(name)
                assert released
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
    watcher = threading.Thread(target=sampler)
    watcher.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()
    watcher.join()

    assert not errors
    assert not violations
    assert ledger.peak_usage <= BUDGET + 1e-9
    assert ledger.usage == pytest.approx(0.0)
    assert ledger.reserved == 0.0
