"""Tests for the alternating optimization loop (Algorithm 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alternating import AlternatingOptimizer
from repro.core.residency import is_feasible, peak_memory_usage
from repro.errors import ValidationError
from repro.graph.topo import is_topological_order
from tests.conftest import make_fig7_problem, make_random_problem


class TestFigure7:
    def test_reaches_the_paper_maximum(self):
        problem = make_fig7_problem()
        result = AlternatingOptimizer().optimize(problem)
        assert result.total_score == 210
        assert {"v1", "v3", "v6"} <= result.plan.flagged
        assert result.peak_memory <= 100 + 1e-9

    def test_order_executes_v4_before_v3(self):
        problem = make_fig7_problem()
        plan = AlternatingOptimizer().optimize(problem).plan
        assert plan.position("v4") < plan.position("v3")


class TestLoopMechanics:
    def test_score_monotone_across_iterations(self):
        for seed in range(8):
            problem = make_random_problem(seed, n_nodes=20)
            result = AlternatingOptimizer().optimize(problem)
            scores = [record.total_score for record in result.history]
            assert scores == sorted(scores)

    def test_selection_only_runs_one_round(self):
        problem = make_fig7_problem()
        optimizer = AlternatingOptimizer(order_solver=None)
        result = optimizer.optimize(problem)
        assert result.stop_reason in ("selection_only", "no_improvement")
        assert result.iterations <= 1

    def test_invalid_configuration(self):
        with pytest.raises(ValidationError):
            AlternatingOptimizer(convergence="banana")
        with pytest.raises(ValidationError):
            AlternatingOptimizer(max_iterations=0)

    def test_invalid_initial_order_rejected(self):
        problem = make_fig7_problem()
        with pytest.raises(ValidationError):
            AlternatingOptimizer().optimize(
                problem,
                initial_order=["v6", "v5", "v4", "v3", "v2", "v1"])

    def test_convergence_by_score_also_works(self):
        problem = make_fig7_problem()
        result = AlternatingOptimizer(convergence="score").optimize(problem)
        assert result.total_score == 210

    def test_empty_flag_set_when_budget_zero(self):
        problem = make_random_problem(3, n_nodes=10, budget_fraction=0.0)
        result = AlternatingOptimizer().optimize(problem)
        assert result.plan.flagged == frozenset()
        assert result.stop_reason == "no_improvement"


class TestInfeasibleOrderHandling:
    def test_infeasible_new_order_keeps_previous(self):
        problem = make_fig7_problem()

        def bad_order_solver(prob, flagged):
            # a valid topological order that breaks the flag set
            return ["v1", "v2", "v3", "v5", "v6", "v4"]

        optimizer = AlternatingOptimizer(order_solver=bad_order_solver)
        result = optimizer.optimize(problem)
        assert result.stop_reason in ("order_infeasible",
                                      "order_not_improved")
        # the returned plan is still feasible
        assert peak_memory_usage(problem.graph, result.plan.order,
                                 result.plan.flagged) <= 100 + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       budget_fraction=st.floats(0.0, 0.9))
def test_property_result_always_feasible(seed, budget_fraction):
    problem = make_random_problem(seed, n_nodes=16,
                                  budget_fraction=budget_fraction)
    result = AlternatingOptimizer().optimize(problem)
    plan = result.plan
    assert is_topological_order(problem.graph, list(plan.order))
    assert is_feasible(problem.graph, plan.order, plan.flagged,
                       problem.memory_budget)
    assert result.total_score == pytest.approx(
        problem.total_score(plan.flagged))
