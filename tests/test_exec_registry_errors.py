"""Error paths of the execution-backend registry.

Covers the three failure modes a backend name can hit: the name is
unknown, the name maps to a module that fails to import (missing
optional dependency, typo), and the name's module imports cleanly but
never registers the promised backend.  Plus registration conflicts:
claiming an existing name with a different class is rejected, while
re-registering the same class (module reload) stays idempotent.
"""

import sys
import types

import pytest

from repro.errors import ValidationError
from repro.exec import base
from repro.exec.base import (
    ExecutionBackend,
    backend_names,
    create_backend,
    get_backend,
    register_backend,
)


@pytest.fixture
def scratch_registry(monkeypatch):
    """Isolated copies of the registry dicts (tests may mutate freely)."""
    # resolve once first: lazy registration is an import side effect, so
    # it must land in the *real* registry, not a scratch copy
    get_backend("simulator")
    monkeypatch.setattr(base, "_BACKENDS", dict(base._BACKENDS))
    monkeypatch.setattr(base, "_BACKEND_MODULES",
                        dict(base._BACKEND_MODULES))


class TestUnknownBackend:
    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValidationError,
                           match="unknown execution backend 'presto'"):
            get_backend("presto")
        with pytest.raises(ValidationError, match="simulator"):
            create_backend("presto")

    def test_backend_names_include_lazy_modules(self):
        names = backend_names()
        for name in ("simulator", "lru", "parallel", "minidb"):
            assert name in names


class TestImportFailures:
    def test_missing_module_reports_backend_and_module(
            self, scratch_registry):
        base._BACKEND_MODULES["ghost"] = "repro.exec.does_not_exist"
        with pytest.raises(ValidationError,
                           match="backend 'ghost' could not be loaded"):
            get_backend("ghost")

    def test_module_raising_on_import_is_wrapped(self, scratch_registry,
                                                 monkeypatch):
        name = "repro_test_broken_backend"
        module = types.ModuleType(name)
        base._BACKEND_MODULES["broken"] = name

        # a module whose import dies (e.g. its optional dependency does)
        monkeypatch.setitem(sys.modules, name, module)
        del sys.modules[name]  # force a real import attempt

        with pytest.raises(ValidationError, match="could not be loaded"):
            get_backend("broken")

    def test_module_that_never_registers_is_unknown(self,
                                                    scratch_registry):
        # 'errors' imports fine but registers no backend named 'errors'
        base._BACKEND_MODULES["errors"] = "repro.errors"
        with pytest.raises(ValidationError,
                           match="unknown execution backend 'errors'"):
            get_backend("errors")


class TestRegistrationConflicts:
    def test_nameless_backend_rejected(self):
        class Nameless(ExecutionBackend):
            def prepare(self, graph, plan, memory_budget, method=""):
                raise NotImplementedError

            def execute_node(self, ctx, node_id):
                raise NotImplementedError

            def finish(self, ctx):
                raise NotImplementedError

        with pytest.raises(ValidationError, match="has no name"):
            register_backend(Nameless)

    def test_duplicate_name_different_class_rejected(
            self, scratch_registry):
        simulator_cls = get_backend("simulator")

        class Impostor(simulator_cls):
            name = "simulator"

        with pytest.raises(ValidationError, match="already registered"):
            register_backend(Impostor)
        assert get_backend("simulator") is simulator_cls  # unchanged

    def test_same_class_reregistration_is_idempotent(
            self, scratch_registry):
        simulator_cls = get_backend("simulator")
        assert register_backend(simulator_cls) is simulator_cls
        assert get_backend("simulator") is simulator_cls

    def test_module_reload_reregisters_without_conflict(
            self, scratch_registry):
        """A reload re-runs @register_backend with a *fresh* class object
        for the same name; that must not be treated as a conflict."""
        import importlib

        import repro.exec.simulator as simulator_module

        before = get_backend("simulator")
        importlib.reload(simulator_module)
        after = get_backend("simulator")
        assert after.__qualname__ == before.__qualname__
