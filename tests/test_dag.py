"""Unit tests for the dependency graph."""

import pytest

from repro.errors import CycleError, GraphError, ValidationError
from repro.graph.dag import DependencyGraph, Node


class TestNode:
    def test_requires_id(self):
        with pytest.raises(ValidationError):
            Node(node_id="")

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            Node(node_id="a", size=-1.0)

    def test_rejects_negative_score(self):
        with pytest.raises(ValidationError):
            Node(node_id="a", score=-0.1)


class TestConstruction:
    def test_add_node_and_lookup(self):
        graph = DependencyGraph()
        graph.add_node("mv1", size=2.5, score=1.0, op="JOIN")
        assert "mv1" in graph
        assert graph.node("mv1").op == "JOIN"
        assert graph.size_of("mv1") == 2.5

    def test_duplicate_node_rejected(self):
        graph = DependencyGraph()
        graph.add_node("a")
        with pytest.raises(GraphError, match="duplicate"):
            graph.add_node("a")

    def test_edge_requires_known_nodes(self):
        graph = DependencyGraph()
        graph.add_node("a")
        with pytest.raises(GraphError, match="consumer"):
            graph.add_edge("a", "ghost")
        with pytest.raises(GraphError, match="producer"):
            graph.add_edge("ghost", "a")

    def test_self_edge_rejected(self):
        graph = DependencyGraph()
        graph.add_node("a")
        with pytest.raises(GraphError, match="self-dependency"):
            graph.add_edge("a", "a")

    def test_duplicate_edge_is_idempotent(self):
        graph = DependencyGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        assert graph.m == 1
        assert graph.children("a") == ["b"]

    def test_from_edges_creates_nodes(self):
        graph = DependencyGraph.from_edges(
            [("a", "b"), ("b", "c")], sizes={"a": 5.0},
            scores={"c": 2.0, "isolated": 1.0})
        assert set(graph.nodes()) == {"a", "b", "c", "isolated"}
        assert graph.size_of("a") == 5.0
        assert graph.score_of("c") == 2.0
        assert graph.in_degree("isolated") == 0


class TestInspection:
    def test_degrees_sources_sinks(self, diamond_graph):
        assert diamond_graph.sources() == ["a"]
        assert diamond_graph.sinks() == ["d"]
        assert diamond_graph.out_degree("a") == 2
        assert diamond_graph.in_degree("d") == 2
        assert diamond_graph.parents("d") == ["b", "c"]

    def test_sizes_scores_totals(self, diamond_graph):
        assert diamond_graph.total_size() == pytest.approx(10.0)
        assert diamond_graph.sizes()["c"] == 3.0
        assert diamond_graph.scores()["b"] == 2.0

    def test_iteration_follows_insertion_order(self):
        graph = DependencyGraph()
        for name in ("z", "m", "a"):
            graph.add_node(name)
        assert graph.nodes() == ["z", "m", "a"]
        assert list(graph) == ["z", "m", "a"]

    def test_unknown_node_raises(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.children("nope")
        with pytest.raises(GraphError):
            diamond_graph.node("nope")


class TestCycles:
    def test_acyclic_graph_validates(self, diamond_graph):
        diamond_graph.validate()
        assert diamond_graph.is_acyclic()

    def test_cycle_detected(self):
        graph = DependencyGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "a")])
        assert not graph.is_acyclic()
        with pytest.raises(CycleError) as excinfo:
            graph.validate()
        cycle = excinfo.value.cycle
        assert cycle is not None
        assert cycle[0] == cycle[-1] or len(set(cycle)) == len(cycle)
        assert {"a", "b", "c"} >= set(cycle) - {cycle[0]} | {cycle[0]}

    def test_self_contained_two_cycle(self):
        graph = DependencyGraph.from_edges([("a", "b"), ("b", "a")])
        assert graph.find_cycle() is not None

    def test_large_chain_no_recursion_error(self):
        edges = [(f"n{i}", f"n{i + 1}") for i in range(5000)]
        graph = DependencyGraph.from_edges(edges)
        assert graph.is_acyclic()


class TestCopiesAndSubgraphs:
    def test_copy_is_independent(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.node("a").size = 99.0
        clone.add_node("extra")
        assert diamond_graph.size_of("a") == 4.0
        assert "extra" not in diamond_graph
        assert clone.edges() == diamond_graph.edges()

    def test_subgraph_induces_edges(self, diamond_graph):
        sub = diamond_graph.subgraph(["a", "b", "d"])
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "d")
        assert not sub.has_edge("a", "d")

    def test_subgraph_unknown_node(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.subgraph(["a", "ghost"])

    def test_to_networkx(self, diamond_graph):
        nxg = diamond_graph.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg.nodes["a"]["size"] == 4.0
