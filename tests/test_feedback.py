"""Tests for the observed-cost feedback subsystem (repro.feedback),
feedback-derived budgets (TierAwareBudget.from_observations), and
mid-run codec adaptation (SpillConfig.adapt)."""

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem, TierAwareBudget, \
    warehouse_ram_gain
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import RunTrace
from repro.errors import ValidationError
from repro.feedback import CostFeedback, TierObservation
from repro.metadata.costmodel import DeviceProfile
from repro.store import CodecAdaptConfig, SpillConfig, TierSpec
from repro.store.tiered import TieredLedger, compressibility_from_graph
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)


def _spilling_case(seed=0, n_nodes=24, compressibility=None):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=0.5),
        seed=seed)
    if compressibility is not None:
        for node_id in graph.nodes():
            graph.node(node_id).meta["compressibility"] = compressibility
    budget = 0.3 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    return graph, plan, peak


def _run(graph, plan, ram, spill, **kwargs):
    controller = Controller(options=SimulatorOptions(spill=spill))
    return controller.refresh(graph, ram, plan=plan, method="sc",
                              **kwargs)


# ----------------------------------------------------------------------
# CostFeedback.from_trace
# ----------------------------------------------------------------------
class TestFromTrace:
    def test_observed_costs_distilled_from_simulated_run(self):
        graph, plan, peak = _spilling_case()
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.5 * peak),
                                   TierSpec("disk")))
        trace = _run(graph, plan, 0.4 * peak, spill)
        assert trace.extras["tiered_store"]["spill_count"] > 0
        feedback = CostFeedback.from_trace(trace)
        assert [t.name for t in feedback.tiers] == ["ssd", "disk"]
        ssd = feedback.observation("ssd")
        assert ssd.spilled_logical_gb > 0
        assert ssd.spill_write_seconds_per_gb > 0
        # some tier was read back and priced from observation
        assert any(t.promote_read_seconds_per_gb for t in feedback.tiers)
        # codec "none": incompressible is 1.0, not None
        assert ssd.observed_ratio == pytest.approx(1.0)
        assert feedback.spill_count == \
            trace.extras["tiered_store"]["spill_count"]

    def test_untouched_tier_reports_none_not_zero(self):
        """The 'no data vs incompressible' fix: a tier that never
        received a spill reports observed ratio/costs as None."""
        graph, plan, peak = _spilling_case()
        spill = SpillConfig(tiers=(TierSpec("ssd", 2.0 * peak),
                                   TierSpec("disk")), codec="zlib")
        trace = _run(graph, plan, 2.0 * peak, spill)  # plenty of RAM
        report = trace.extras["tiered_store"]
        assert report["spill_count"] == 0
        assert report["observed_codec_ratio"] is None
        for tier in report["tiers"]:
            assert tier["observed"]["observed_ratio"] is None
            assert tier["observed"]["spill_write_seconds_per_gb"] is None
        feedback = CostFeedback.from_trace(trace)
        for tier in feedback.tiers:
            assert tier.observed_ratio is None
            assert tier.spill_write_seconds_per_gb is None

    def test_compressibility_meta_drives_observed_ratio(self):
        graph, plan, peak = _spilling_case(compressibility=0.0)
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.5 * peak),
                                   TierSpec("disk")), codec="zlib")
        trace = _run(graph, plan, 0.4 * peak, spill)
        report = trace.extras["tiered_store"]
        assert report["spill_count"] > 0
        # incompressible workload: realized ratio 1.0 despite zlib 2.6
        assert report["observed_codec_ratio"] == pytest.approx(1.0)
        assert report["spill_stored_gb"] == \
            pytest.approx(report["spill_bytes_gb"])

    def test_trace_without_tiered_store_rejected(self):
        with pytest.raises(ValidationError):
            CostFeedback.from_trace(RunTrace())

    def test_roundtrips_through_dict(self):
        graph, plan, peak = _spilling_case()
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.5 * peak),
                                   TierSpec("disk")))
        feedback = CostFeedback.from_trace(
            _run(graph, plan, 0.4 * peak, spill))
        assert CostFeedback.from_dict(feedback.to_dict()) == feedback


# ----------------------------------------------------------------------
# TierAwareBudget.from_observations
# ----------------------------------------------------------------------
class TestFromObservations:
    def test_no_observations_matches_modeled_budget(self):
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0),
                                   TierSpec("disk", 32.0)), codec="zlib")
        modeled = TierAwareBudget.from_spill(4.0, spill)
        observed = TierAwareBudget.from_observations(4.0, spill, None)
        assert observed == modeled
        empty = TierAwareBudget.from_observations(4.0, spill,
                                                  {"ssd": {}})
        assert empty == modeled

    def test_observed_penalty_shrinks_discount(self):
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0),))
        modeled = TierAwareBudget.from_spill(4.0, spill)
        gain = warehouse_ram_gain(DeviceProfile())
        dear = TierAwareBudget.from_observations(
            4.0, spill,
            {"ssd": {"spill_write_seconds_per_gb": gain,
                     "promote_read_seconds_per_gb": gain}})
        assert dear.tiers[0].discount == 0.0
        assert dear.tiers[0].discount < modeled.tiers[0].discount
        assert dear.effective_budget() == pytest.approx(4.0)

    def test_observed_ratio_rescales_capacity(self):
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0),), codec="zlib")
        observed = TierAwareBudget.from_observations(
            4.0, spill, {"ssd": {"observed_ratio": 1.0}})
        assert observed.tiers[0].capacity == pytest.approx(8.0)
        assert observed.tiers[0].codec_ratio == pytest.approx(1.0)
        modeled = TierAwareBudget.from_spill(4.0, spill)
        assert modeled.tiers[0].capacity == pytest.approx(8.0 * 2.6)

    def test_none_values_fall_back_to_model(self):
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0),), codec="zlib")
        observed = TierAwareBudget.from_observations(
            4.0, spill, {"ssd": {"observed_ratio": None,
                                 "spill_write_seconds_per_gb": None,
                                 "promote_read_seconds_per_gb": None}})
        assert observed == TierAwareBudget.from_spill(4.0, spill)


# ----------------------------------------------------------------------
# Controller feedback planning
# ----------------------------------------------------------------------
class TestControllerFeedback:
    def test_replan_from_trace_flags_less_when_tiers_look_dear(self):
        """Feeding back an observed ratio of ~1 on a zlib hierarchy
        must shrink the effective budget versus the static plan."""
        graph, plan, peak = _spilling_case(compressibility=0.0)
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.4 * peak),
                                   TierSpec("cold")),
                            codec="zlib")
        ram = 0.4 * peak
        controller = Controller(options=SimulatorOptions(spill=spill))
        static_plan = controller.plan(graph, ram, tier_aware=True)
        first = controller.refresh(graph, ram, plan=static_plan,
                                   method="sc")
        assert first.extras["tiered_store"]["spill_count"] > 0
        replanned = controller.replan_from_trace(graph, first)
        assert len(replanned.flagged) <= len(static_plan.flagged)
        feedback = CostFeedback.from_trace(first)
        static_budget = controller.tier_budget(ram)
        observed_budget = controller.tier_budget(ram, feedback=feedback)
        assert observed_budget.effective_budget(graph.total_size()) < \
            static_budget.effective_budget(graph.total_size())

    def test_refresh_accepts_feedback(self):
        graph, plan, peak = _spilling_case()
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.5 * peak),
                                   TierSpec("disk")))
        controller = Controller(options=SimulatorOptions(spill=spill))
        first = controller.refresh(graph, 0.4 * peak, plan=plan,
                                   method="sc")
        feedback = CostFeedback.from_trace(first)
        second = controller.refresh(graph, 0.4 * peak, method="sc",
                                    feedback=feedback)
        assert second.end_to_end_time > 0

    def test_feedback_without_spill_config_rejected(self):
        graph, plan, peak = _spilling_case()
        feedback = CostFeedback(tiers=(TierObservation(name="ssd"),))
        with pytest.raises(ValidationError):
            Controller().refresh(graph, peak, method="sc",
                                 feedback=feedback)


# ----------------------------------------------------------------------
# Mid-run codec adaptation
# ----------------------------------------------------------------------
class TestCodecAdaptation:
    def _ledger(self, codec="zlib", adapt=CodecAdaptConfig(samples=2),
                budget=1.0, tier_budget=100.0):
        return TieredLedger(budget, SpillConfig(
            tiers=(TierSpec("ssd", tier_budget),),
            codec=codec, adapt=adapt))

    def test_incompressible_samples_switch_codec_off(self):
        ledger = self._ledger()
        ledger.set_compressibility({"a": 0.0, "b": 0.0, "c": 0.0})
        for name in ("a", "b", "c"):
            ledger.insert(name, 0.9, n_consumers=1)
            ledger.demote(name)
        record = ledger.codec_adapt["ssd"]
        assert record["repriced"] is True
        assert record["switched_to"] == "none"
        assert record["observed_ratio"] == pytest.approx(1.0)
        assert ledger.current_codec(1).name == "none"
        assert ledger.priced_ratio(1) == pytest.approx(1.0)
        # entries stored before the switch keep their encoding codec
        # for decode pricing; new spills store raw
        assert ledger.stored_size_of("c") == pytest.approx(0.9)

    def test_accurate_preset_is_left_alone(self):
        ledger = self._ledger()
        for name in ("a", "b"):
            ledger.insert(name, 0.9, n_consumers=1)
            ledger.demote(name)
        record = ledger.codec_adapt["ssd"]
        assert record["repriced"] is False
        assert record["switched_to"] is None
        assert ledger.current_codec(1).name == "zlib"
        assert ledger.priced_ratio(1) == pytest.approx(2.6)

    def test_repriced_without_switch_when_codec_still_pays(self):
        """A diverged-but-still-compressing workload re-prices the cost
        model without dropping the codec (slow disk: transfers saved at
        1.8x still outweigh the encode/decode tax)."""
        ledger = TieredLedger(1.0, SpillConfig(
            tiers=(TierSpec("disk", 100.0),), codec="zlib",
            adapt=CodecAdaptConfig(samples=2)))
        mult = 0.5  # realized ratio 1 + 1.6*0.5 = 1.8 vs preset 2.6
        ledger.set_compressibility({"a": mult, "b": mult})
        for name in ("a", "b"):
            ledger.insert(name, 0.9, n_consumers=1)
            ledger.demote(name)
        record = ledger.codec_adapt["disk"]
        assert record["repriced"] is True
        assert record["switched_to"] is None
        assert ledger.current_codec(1).name == "zlib"
        assert ledger.priced_ratio(1) == pytest.approx(1.8)

    def test_adapt_disabled_never_touches_codec(self):
        ledger = self._ledger(adapt=None)
        ledger.set_compressibility({"a": 0.0, "b": 0.0, "c": 0.0})
        for name in ("a", "b", "c"):
            ledger.insert(name, 0.9, n_consumers=1)
            ledger.demote(name)
        assert ledger.codec_adapt == {}
        assert ledger.current_codec(1).name == "zlib"

    def test_adaptation_logged_in_trace_extras(self):
        graph, plan, peak = _spilling_case(compressibility=0.0)
        spill = SpillConfig(
            tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
            codec="zlib", adapt=CodecAdaptConfig(samples=1))
        trace = _run(graph, plan, 0.4 * peak, spill)
        adapt = trace.extras["tiered_store"]["codec_adapt"]
        assert adapt["enabled"] is True
        assert adapt["tiers"], "no adaptation decision was logged"
        for record in adapt["tiers"].values():
            assert record["switched_to"] == "none"
        # and it round-trips with the rest of the trace
        assert RunTrace.from_json(trace.to_json()).to_dict() == \
            trace.to_dict()

    def test_bad_adapt_config_rejected(self):
        with pytest.raises(ValidationError):
            CodecAdaptConfig(samples=0)
        with pytest.raises(ValidationError):
            CodecAdaptConfig(threshold=0.0)


# ----------------------------------------------------------------------
# compressibility plumbing
# ----------------------------------------------------------------------
class TestCompressibility:
    def test_harvested_from_graph_meta(self):
        graph, _, _ = _spilling_case(compressibility=0.5)
        mapping = compressibility_from_graph(graph)
        assert set(mapping) == set(graph.nodes())
        assert all(value == 0.5 for value in mapping.values())

    def test_negative_multiplier_rejected(self):
        ledger = TieredLedger(1.0, SpillConfig(
            tiers=(TierSpec("disk"),), codec="zlib"))
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            ledger.set_compressibility({"a": -0.5})

    def test_multiplier_scales_stored_size(self):
        ledger = TieredLedger(1.0, SpillConfig(
            tiers=(TierSpec("disk"),), codec="zlib"))
        ledger.set_compressibility({"rich": 2.0, "lean": 0.0})
        for name in ("rich", "lean"):
            ledger.insert(name, 0.8, n_consumers=1)
            ledger.demote(name)
        # rich: ratio 1 + 1.6*2 = 4.2; lean: clamped to 1.0
        assert ledger.stored_size_of("rich") == pytest.approx(0.8 / 4.2)
        assert ledger.stored_size_of("lean") == pytest.approx(0.8)
        assert ledger.size_of("rich") == pytest.approx(0.8)


# ----------------------------------------------------------------------
# MiniDB: wall-clock fallback + real measured adaptation
# ----------------------------------------------------------------------
class TestMiniDbFeedback:
    @pytest.fixture
    def workload(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.db.table import Table

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(7)
        n = 60_000
        db.register_table("events", Table({
            "user": rng.integers(0, 40, n),
            "amount": rng.uniform(0, 10, n),
        }))
        return SqlWorkload(db=db, definitions=[
            MvDefinition("mv_a", "SELECT user, amount FROM events "
                                 "WHERE amount > 1"),
            MvDefinition("mv_b", "SELECT user, amount FROM mv_a "
                                 "WHERE amount > 2"),
            MvDefinition("mv_c", "SELECT user, SUM(amount) AS s "
                                 "FROM mv_a GROUP BY user"),
            MvDefinition("mv_d", "SELECT user, amount FROM mv_b "
                                 "WHERE amount > 3"),
        ])

    def test_wall_clock_fallback_prices_the_spill_tier(self, workload,
                                                       tmp_path):
        profiled = workload.profile()
        plan = Controller().plan(profiled, 1000.0, method="sc")
        sizes = {n: profiled.size_of(n) for n in profiled.nodes()}
        ram = 1.1 * max(sizes[n] for n in plan.flagged)
        controller = Controller(spill_dir=str(tmp_path / "spill"),
                                spill=SpillConfig(codec="zlib"))
        trace = controller.refresh_on_minidb(workload, ram, method="sc",
                                             plan=plan)
        report = trace.extras["tiered_store"]
        assert report["spill_count"] > 0
        # charge_io=False: the report's per-GB seconds come from the
        # *measured* wall clocks the backend records per tier, so the
        # feedback loop prices the tier even in multi-tier hierarchies
        # where the node-trace fallback cannot attribute the time
        tier = report["tiers"][1]
        assert tier["observed"]["spill_write_seconds_per_gb"] > 0
        assert tier["observed"]["observed_ratio"] is not None
        feedback = CostFeedback.from_trace(trace)
        spilled = feedback.observation("spill-disk")
        assert spilled.spill_write_seconds_per_gb > 0  # from wall clocks
        # the measured dumps genuinely compressed
        assert spilled.observed_ratio > 1.0
        budget = feedback.tier_budget(
            ram, SpillConfig(tiers=(TierSpec("spill-disk"),),
                             codec="zlib"))
        assert budget.tiers[0].penalty_seconds_per_gb > 0
