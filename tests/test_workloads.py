"""Tests for workload construction: the five Table III workloads, the
TPC-DS/TPC-H generators, and the synthetic workload generator."""

import pytest

from repro.errors import ValidationError, WorkloadError
from repro.metadata.costmodel import DeviceProfile, POLARS_PROFILE
from repro.workloads.calibrate import (
    baseline_io_time,
    calibrate_compute_times,
    measured_io_share,
)
from repro.workloads.five_workloads import (
    AGG_GROWTH_EXPONENT,
    WORKLOAD_NAMES,
    WORKLOAD_SUMMARY,
    build_five_workloads,
    build_workload,
    workload_info,
)
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
    generate_workload,
)
from repro.workloads.sizes import (
    TPCDS_100GB_TABLE_SIZES_GB,
    scaled_table_sizes,
)


class TestCalibration:
    def test_io_share_pinned(self, diamond_graph):
        cost = DeviceProfile()
        calibrate_compute_times(diamond_graph, cost, 0.4)
        assert measured_io_share(diamond_graph, cost) == pytest.approx(
            0.4, rel=1e-6)

    def test_invalid_share(self, diamond_graph):
        with pytest.raises(ValidationError):
            calibrate_compute_times(diamond_graph, DeviceProfile(), 0.0)
        with pytest.raises(ValidationError):
            calibrate_compute_times(diamond_graph, DeviceProfile(), 1.0)

    def test_io_time_positive(self, diamond_graph):
        assert baseline_io_time(diamond_graph, DeviceProfile()) > 0


class TestSizesCensus:
    def test_fact_tables_dominate(self):
        sizes = TPCDS_100GB_TABLE_SIZES_GB
        facts = sizes["store_sales"] + sizes["catalog_sales"] + \
            sizes["web_sales"]
        assert facts > 0.6 * sum(sizes.values())

    def test_scaling(self):
        scaled = scaled_table_sizes(10.0)
        assert sum(scaled.values()) == pytest.approx(10.0)


class TestFiveWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_node_counts_match_table3(self, name):
        graph = build_workload(name, scale_gb=100.0)
        assert graph.n == WORKLOAD_SUMMARY[name][1]
        graph.validate()

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_io_ratio_matches_table3(self, name):
        graph = build_workload(name, scale_gb=100.0)
        target = WORKLOAD_SUMMARY[name][2]
        assert measured_io_share(graph, POLARS_PROFILE) == pytest.approx(
            target, rel=1e-6)

    def test_partitioned_intermediates_smaller(self):
        for name in ("io1", "io2", "io3"):
            regular = build_workload(name, scale_gb=100.0)
            partitioned = build_workload(name, scale_gb=100.0,
                                         partitioned=True)
            assert partitioned.total_size() < 0.6 * regular.total_size()

    def test_sizes_scale_near_linearly(self):
        # Filter/join outputs scale linearly with the dataset; aggregates
        # grow sublinearly (group-by cardinality saturates), so every node
        # lands between the pure-AGG and pure-linear growth rates.
        small = build_workload("io1", scale_gb=10.0)
        large = build_workload("io1", scale_gb=100.0)
        # stacked aggregates compound the damping, so the loosest bound
        # is three AGG hops deep
        sublinear = 10.0 ** (1.0 - 3.0 * (1.0 - AGG_GROWTH_EXPONENT))
        for node in small.nodes():
            ratio = large.size_of(node) / small.size_of(node)
            assert sublinear - 1e-6 <= ratio <= 10.0 + 1e-6

    def test_agg_nodes_scale_sublinearly(self):
        small = build_workload("io1", scale_gb=10.0)
        large = build_workload("io1", scale_gb=100.0)
        agg_nodes = [v for v in small.nodes()
                     if small.node(v).op == "AGG"]
        assert agg_nodes
        for node in agg_nodes:
            ratio = large.size_of(node) / small.size_of(node)
            assert ratio < 10.0 - 1e-6

    def test_scores_positive(self):
        for graph in build_five_workloads(scale_gb=100.0).values():
            assert all(graph.score_of(v) > 0 for v in graph.nodes())

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            build_workload("io99")

    def test_workload_info(self):
        info = workload_info("io1")
        assert info.tpcds_queries == (5, 77, 80)
        assert info.n_nodes == 21


class TestGeneratedWorkloads:
    def test_respects_dag_size(self):
        for n in (10, 25, 50):
            graph = generate_workload(GeneratedWorkloadConfig(n_nodes=n),
                                      seed=1)
            assert graph.n == n
            graph.validate()

    def test_sources_are_scans_with_base_inputs(self):
        graph = generate_workload(GeneratedWorkloadConfig(n_nodes=40),
                                  seed=2)
        for node_id in graph.sources():
            node = graph.node(node_id)
            assert node.op == "SCAN"
            assert node.meta["base_input_gb"] > 0

    def test_interior_nodes_are_not_scans(self):
        graph = generate_workload(GeneratedWorkloadConfig(n_nodes=40),
                                  seed=3)
        for node_id in graph.nodes():
            if graph.in_degree(node_id) > 0:
                assert graph.node(node_id).op != "SCAN"

    def test_deterministic_per_seed(self):
        generator = WorkloadGenerator()
        a = generator.generate(GeneratedWorkloadConfig(n_nodes=30), seed=5)
        b = generator.generate(GeneratedWorkloadConfig(n_nodes=30), seed=5)
        assert a.sizes() == b.sizes()
        assert a.edges() == b.edges()

    def test_io_share_calibrated(self):
        config = GeneratedWorkloadConfig(n_nodes=30, io_time_share=0.5)
        graph = generate_workload(config, seed=7)
        assert measured_io_share(graph, DeviceProfile()) == pytest.approx(
            0.5, rel=1e-6)

    def test_all_nodes_annotated(self):
        graph = generate_workload(seed=8)
        for node_id in graph.nodes():
            node = graph.node(node_id)
            assert node.size > 0
            assert node.compute_time is not None
            assert node.op is not None


class TestTpcdsGenerator:
    def test_tables_and_proportions(self):
        from repro.workloads.tpcds import (
            generate_tpcds_tables,
            tpcds_schemas,
        )

        tables = generate_tpcds_tables(scale_gb=0.01, seed=0)
        schemas = tpcds_schemas()
        for name, schema in schemas.items():
            assert name in tables
            schema.validate_table(tables[name])
        assert len(tables["store_sales"]) > len(tables["catalog_sales"])
        assert len(tables["catalog_sales"]) > len(tables["web_sales"])
        assert len(tables["item"]) == 2000

    def test_scale_validation(self):
        from repro.workloads.tpcds import generate_tpcds_tables

        with pytest.raises(ValidationError):
            generate_tpcds_tables(scale_gb=0.0)


class TestTpchGenerator:
    def test_q8_join_runs(self, tmp_path):
        from repro.db.engine import MiniDB
        from repro.workloads.tpch import TPCH_Q8_JOIN_SQL, load_tpch

        db = MiniDB(str(tmp_path))
        load_tpch(db, scale_gb=0.002, seed=1)
        result, timing = db.query(TPCH_Q8_JOIN_SQL)
        assert len(result) > 0
        assert "n_regionkey" in result
        assert timing.read_seconds > 0

    def test_lineitem_dominates(self):
        from repro.workloads.tpch import generate_tpch_tables

        tables = generate_tpch_tables(scale_gb=0.005, seed=0)
        assert tables["lineitem"].nbytes > tables["orders"].nbytes
        assert tables["orders"].nbytes > tables["customer"].nbytes
        assert len(tables["nation"]) == 25
