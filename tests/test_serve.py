"""Service layer (repro.serve): multi-tenant concurrent refreshes.

Deterministic tier-1 coverage of the serve layer's contracts — tenant
validation, priority dispatch, open-loop backpressure, cooperative
cancellation/deadlines with clean ledger unwind, the ``service``
execution backend, and the Controller entry points.  The randomized
concurrency fuzz (many requests x random cancellations x checked
ledger) lives in ``tests/test_invariants_random.py``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.engine.controller import Controller
from repro.errors import (
    RunCancelledError,
    ServiceOverloadError,
    ValidationError,
)
from repro.serve import RefreshService, ServiceConfig, TenantSpec
from repro.serve.service import percentile
from repro.store.config import SpillConfig, TierSpec
from repro.workloads.five_workloads import build_workload

_SPILL = SpillConfig(tiers=(TierSpec("disk"),))


def _case(scale_gb: float = 20.0, ram_fraction: float = 0.25,
          workload: str = "io1"):
    graph = build_workload(workload, scale_gb=scale_gb)
    budget = ram_fraction * graph.total_size()
    plan = Controller().plan(graph, budget, method="sc", seed=0)
    return graph, plan, budget


def _config(budget: float, **overrides) -> ServiceConfig:
    defaults = dict(ram_budget_gb=budget, spill=_SPILL,
                    time_scale=1e-4, max_concurrent=4)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _assert_clean(service: RefreshService) -> None:
    violations = service.audit()
    assert all(not value for value in violations.values()), violations


# ----------------------------------------------------------------------
# construction / validation
# ----------------------------------------------------------------------

def test_tenant_shares_must_partition_the_budget():
    config = _config(4.0)
    with pytest.raises(ValidationError):
        RefreshService(config, [TenantSpec("a", 0.7),
                                TenantSpec("b", 0.7)])
    with pytest.raises(ValidationError):
        RefreshService(config, [TenantSpec("a", 0.0)])
    with pytest.raises(ValidationError):
        RefreshService(config, [])
    with pytest.raises(ValidationError):
        RefreshService(config, [TenantSpec("a", 0.4),
                                TenantSpec("a", 0.4)])


def test_tenant_shares_register_on_the_shared_ledger():
    service = RefreshService(_config(8.0), [TenantSpec("a", 0.75),
                                            TenantSpec("b", 0.25)])
    assert sorted(service.ledger.tenant_names()) == ["a", "b"]
    assert service.ledger.tenant_available("a") == pytest.approx(6.0)
    assert service.ledger.tenant_available("b") == pytest.approx(2.0)


def test_submit_rejects_unknown_tenant():
    graph, plan, budget = _case()

    async def main():
        async with RefreshService(_config(budget),
                                  [TenantSpec("a", 1.0)]) as svc:
            with pytest.raises(ValidationError):
                await svc.submit(graph, plan, tenant="nobody")

    asyncio.run(main())


# ----------------------------------------------------------------------
# happy path
# ----------------------------------------------------------------------

def test_concurrent_requests_share_one_ledger_cleanly():
    graph, plan, budget = _case()

    async def main():
        service = RefreshService(
            _config(budget), [TenantSpec("a", 0.5, priority=1),
                              TenantSpec("b", 0.5)])
        async with service as svc:
            handles = [await svc.submit(graph, plan,
                                        tenant="ab"[i % 2])
                       for i in range(6)]
            results = [await handle for handle in handles]
        return service, results

    service, results = asyncio.run(main())
    assert [r.status for r in results] == ["ok"] * 6
    assert {r.tenant for r in results} == {"a", "b"}
    for result in results:
        assert result.trace is not None
        assert result.trace.extras["service"]["tenant"] == result.tenant
        assert result.latency_s > 0
        assert result.queue_wait_s is not None
    _assert_clean(service)
    latencies = service.latencies_by_tenant()
    assert len(latencies["a"]) == 3 and len(latencies["b"]) == 3


def test_plan_none_runs_in_topological_order_nothing_flagged():
    graph, _, budget = _case()

    async def main():
        service = RefreshService(_config(budget), [TenantSpec("a", 1.0)])
        async with service as svc:
            result = await (await svc.submit(graph, None, tenant="a"))
        return service, result

    service, result = asyncio.run(main())
    assert result.status == "ok"
    assert not any(trace.flagged for trace in result.trace.nodes)
    _assert_clean(service)


def test_higher_priority_tenant_dispatches_first():
    graph, plan, budget = _case()

    async def main():
        service = RefreshService(
            _config(budget, max_concurrent=1),
            [TenantSpec("low", 0.5, priority=0),
             TenantSpec("high", 0.5, priority=9)])
        async with service as svc:
            first = await svc.submit(graph, plan, tenant="low")
            # both queued while `first` occupies the only slot:
            # the high-priority tenant must overtake FIFO order
            second = await svc.submit(graph, plan, tenant="low")
            third = await svc.submit(graph, plan, tenant="high")
            results = [await h for h in (first, second, third)]
        return service, {r.request_id: r for r in results}

    service, by_id = asyncio.run(main())
    assert all(r.status == "ok" for r in by_id.values())
    assert by_id["r2"].started_s < by_id["r1"].started_s
    _assert_clean(service)


# ----------------------------------------------------------------------
# backpressure
# ----------------------------------------------------------------------

def test_full_queue_rejects_with_overload_error():
    graph, plan, budget = _case()

    async def main():
        service = RefreshService(
            _config(budget, max_concurrent=1, queue_limit=2),
            [TenantSpec("a", 1.0)])
        async with service as svc:
            # back-to-back submissions never yield to the dispatcher,
            # so both sit in the pending queue and the third submission
            # must bounce off the queue_limit
            handles = [await svc.submit(graph, plan, tenant="a"),
                       await svc.submit(graph, plan, tenant="a")]
            with pytest.raises(ServiceOverloadError):
                await svc.submit(graph, plan, tenant="a")
            results = [await handle for handle in handles]
        return service, results

    service, results = asyncio.run(main())
    assert [r.status for r in results] == ["ok"] * 2
    _assert_clean(service)


# ----------------------------------------------------------------------
# cancellation / deadlines: clean unwind of the shared ledger
# ----------------------------------------------------------------------

def test_cancelled_request_unwinds_without_leaks():
    # a big spilling workload cancelled mid-flight must leave zero
    # residue: no holds, no reservations, no consumer counts
    graph, plan, budget = _case(scale_gb=50.0, workload="io2")

    async def main():
        service = RefreshService(_config(budget, time_scale=1e-3),
                                 [TenantSpec("a", 1.0)])
        async with service as svc:
            victim = await svc.submit(graph, plan, tenant="a")
            survivor = await svc.submit(graph, plan, tenant="a")
            await asyncio.sleep(0.01)  # let it reach mid-run
            victim.cancel()
            results = [await victim, await survivor]
        return service, results

    service, (cancelled, ok) = asyncio.run(main())
    assert cancelled.status == "cancelled"
    assert cancelled.trace is None
    assert ok.status == "ok"  # the survivor is unaffected
    _assert_clean(service)
    assert service.ledger.resident() == []
    assert service.ledger.tenant_usage("a") == pytest.approx(0.0, abs=1e-9)


def test_deadline_expires_as_timeout_and_unwinds():
    graph, plan, budget = _case(scale_gb=50.0, workload="io2")

    async def main():
        service = RefreshService(_config(budget, time_scale=1e-3),
                                 [TenantSpec("a", 1.0)])
        async with service as svc:
            handle = await svc.submit(graph, plan, tenant="a",
                                      deadline_s=0.02)
            return service, await handle

    service, result = asyncio.run(main())
    assert result.status == "timeout"
    assert "deadline" in result.error
    _assert_clean(service)


def test_caller_supplied_cancel_event_is_honored():
    graph, plan, budget = _case()
    cancel = threading.Event()
    cancel.set()  # cancelled before the first node boundary

    async def main():
        service = RefreshService(_config(budget), [TenantSpec("a", 1.0)])
        async with service as svc:
            handle = await svc.submit(graph, plan, tenant="a",
                                      cancel=cancel)
            return service, await handle

    service, result = asyncio.run(main())
    assert result.status == "cancelled"
    _assert_clean(service)


# ----------------------------------------------------------------------
# tenant isolation
# ----------------------------------------------------------------------

def test_tenant_share_is_enforced_by_shedding_own_entries():
    # share enforcement is admission-granular: before every flagged
    # admission the request sheds its own tenant's RAM entries until
    # the output fits its share, so a tenant's peak can exceed its
    # slice by at most one entry (a promote or an over-share output),
    # never by unbounded accumulation
    graph, plan, budget = _case(scale_gb=50.0, workload="io2",
                                ram_fraction=0.5)
    largest = max(graph.size_of(node) for node in graph.nodes())

    async def main():
        service = RefreshService(
            _config(budget), [TenantSpec("a", 0.5), TenantSpec("b", 0.5)])
        async with service as svc:
            handles = [await svc.submit(graph, plan, tenant="ab"[i % 2])
                       for i in range(4)]
            results = [await handle for handle in handles]
        return service, results

    service, results = asyncio.run(main())
    assert all(r.status == "ok" for r in results)
    report = service.ledger.tier_report()
    for name in ("a", "b"):
        tenant = report["tenants"][name]
        assert tenant["peak"] > 0  # both tenants actually used RAM
        assert tenant["peak"] <= tenant["budget"] + largest + 1e-6, (
            f"tenant {name} peak {tenant['peak']} burst more than one "
            f"entry past its share {tenant['budget']}")
    _assert_clean(service)


# ----------------------------------------------------------------------
# the `service` execution backend + Controller entry points
# ----------------------------------------------------------------------

def test_service_backend_runs_one_refresh_via_controller():
    graph, plan, budget = _case()
    controller = Controller(spill=_SPILL)
    trace = controller.refresh(graph, budget, method="sc", seed=0,
                               plan=plan, backend="service")
    assert trace.method == "sc"
    assert trace.extras["service"]["tenant"] == "solo"
    assert len(trace.nodes) == len(plan.order)


def test_service_backend_honors_controller_cancel():
    graph, plan, budget = _case()
    cancel = threading.Event()
    cancel.set()
    controller = Controller(spill=_SPILL, cancel=cancel)
    with pytest.raises(RunCancelledError):
        controller.refresh(graph, budget, method="sc", seed=0,
                           plan=plan, backend="service")


def test_refresh_concurrent_convenience_wrapper():
    graph, plan, budget = _case()
    controller = Controller(spill=_SPILL)
    requests = [(graph, plan, "a"), (graph, plan, "b"),
                (graph, None, "a")]
    results, service = controller.refresh_concurrent(
        requests, budget,
        [TenantSpec("a", 0.5, priority=1), TenantSpec("b", 0.5)],
        time_scale=1e-4)
    assert [r.status for r in results] == ["ok"] * 3
    assert [r.tenant for r in results] == ["a", "b", "a"]
    _assert_clean(service)


# ----------------------------------------------------------------------
# cli + helpers
# ----------------------------------------------------------------------

def test_cli_serve_smoke_exits_zero(capsys):
    from repro.cli import main

    status = main(["serve", "--requests", "6", "--tenants", "2",
                   "--scale-gb", "10", "--time-scale", "1e-4"])
    out = capsys.readouterr().out
    assert status == 0
    assert "audit: clean" in out
    assert "tenant-0" in out and "tenant-1" in out


def test_percentile_is_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 100) == 5.0
    with pytest.raises(ValidationError):
        percentile([], 50)
