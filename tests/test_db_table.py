"""Tests for the columnar Table."""

import numpy as np
import pytest

from repro.db.schema import ColumnSpec, TableSchema
from repro.db.table import Table
from repro.errors import ValidationError


@pytest.fixture
def table() -> Table:
    return Table({
        "id": np.array([1, 2, 3, 4]),
        "value": np.array([10.0, 20.0, 30.0, 40.0]),
    })


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValidationError):
            Table({})

    def test_rejects_ragged_columns(self):
        with pytest.raises(ValidationError):
            Table({"a": np.array([1, 2]), "b": np.array([1])})

    def test_rejects_2d_columns(self):
        with pytest.raises(ValidationError):
            Table({"a": np.zeros((2, 2))})

    def test_from_dict(self):
        table = Table.from_dict({"x": [1, 2, 3]})
        assert len(table) == 3
        assert table["x"].tolist() == [1, 2, 3]


class TestAccess:
    def test_unknown_column(self, table):
        with pytest.raises(ValidationError, match="unknown column"):
            table["ghost"]

    def test_nbytes_and_size(self, table):
        assert table.nbytes == 4 * 8 * 2
        assert table.size_gb == pytest.approx(table.nbytes / 1024 ** 3)

    def test_contains(self, table):
        assert "id" in table
        assert "ghost" not in table


class TestTransforms:
    def test_take_and_mask(self, table):
        taken = table.take(np.array([2, 0]))
        assert taken["id"].tolist() == [3, 1]
        masked = table.mask(table["value"] > 15.0)
        assert masked["id"].tolist() == [2, 3, 4]

    def test_mask_validation(self, table):
        with pytest.raises(ValidationError):
            table.mask(np.array([1, 0, 1, 0]))
        with pytest.raises(ValidationError):
            table.mask(np.array([True, False]))

    def test_select_and_rename(self, table):
        sub = table.select(["value"])
        assert sub.column_names == ["value"]
        renamed = table.rename({"id": "key"})
        assert renamed.column_names == ["key", "value"]

    def test_with_column(self, table):
        extended = table.with_column("flag", np.array([0, 1, 0, 1]))
        assert extended.n_columns == 3
        assert table.n_columns == 2  # original untouched
        with pytest.raises(ValidationError):
            table.with_column("bad", np.array([1]))

    def test_concat(self, table):
        doubled = Table.concat([table, table])
        assert len(doubled) == 8
        with pytest.raises(ValidationError):
            Table.concat([table, table.select(["id"])])
        with pytest.raises(ValidationError):
            Table.concat([])

    def test_equals(self, table):
        assert table.equals(Table(table.columns()))
        assert not table.equals(table.select(["id"]))

    def test_to_pylist(self, table):
        rows = table.to_pylist()
        assert rows[0] == {"id": 1, "value": 10.0}


class TestSchema:
    def test_column_spec_types(self):
        with pytest.raises(ValidationError):
            ColumnSpec("a", "decimal")
        assert ColumnSpec("a", "int").dtype == np.dtype(np.int64)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValidationError):
            TableSchema.make("t", [("a", "int"), ("a", "float")])

    def test_validate_table(self, table):
        schema = TableSchema.make("t", [("id", "int"),
                                        ("value", "float")])
        schema.validate_table(table)
        bad_schema = TableSchema.make("t", [("id", "float"),
                                            ("value", "float")])
        with pytest.raises(ValidationError):
            bad_schema.validate_table(table)
        missing = TableSchema.make("t", [("nope", "int")])
        with pytest.raises(ValidationError):
            missing.validate_table(table)

    def test_column_lookup(self):
        schema = TableSchema.make("t", [("a", "int")])
        assert schema.column("a").type == "int"
        with pytest.raises(ValidationError):
            schema.column("b")
