"""Tests for the optimizer facade and the method registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import OPTIMIZER_METHODS, optimize, plan_summary
from repro.core.residency import is_feasible
from repro.errors import ValidationError
from repro.graph.topo import is_topological_order
from tests.conftest import make_fig7_problem, make_random_problem


class TestRegistry:
    def test_unknown_method_rejected(self):
        problem = make_fig7_problem()
        with pytest.raises(ValidationError, match="unknown method"):
            optimize(problem, method="magic")

    def test_none_method_flags_nothing(self):
        problem = make_fig7_problem()
        result = optimize(problem, method="none")
        assert result.plan.flagged == frozenset()
        assert result.total_score == 0.0

    def test_sc_is_mkp_madfs(self):
        problem = make_fig7_problem()
        assert optimize(problem, "sc").plan == \
            optimize(problem, "mkp+madfs").plan

    @pytest.mark.parametrize("method", OPTIMIZER_METHODS)
    def test_every_method_produces_feasible_plan(self, method):
        problem = make_fig7_problem()
        result = optimize(problem, method=method, seed=1)
        plan = result.plan
        assert is_topological_order(problem.graph, list(plan.order))
        assert is_feasible(problem.graph, plan.order, plan.flagged,
                           problem.memory_budget)

    def test_random_method_respects_seed(self):
        problem = make_random_problem(5, n_nodes=20)
        a = optimize(problem, "random", seed=1).plan
        b = optimize(problem, "random", seed=1).plan
        assert a == b


class TestNonePeakMemory:
    def test_none_reports_measured_peak(self):
        """'none' computes peak residency from the plan it returns.

        For an unoptimized plan (nothing flagged) the measured peak is
        genuinely 0.0 — the point of the change is that the value is
        *measured* from the plan, so it stays correct if the unoptimized
        baseline ever changes, and it matches what plan_summary reports.
        """
        problem = make_fig7_problem()
        result = optimize(problem, method="none")
        assert result.plan.flagged == frozenset()
        assert result.peak_memory == 0.0
        summary = plan_summary(problem, result)
        assert summary["peak_memory"] == result.peak_memory


class TestRandomSelectorRng:
    def test_random_madfs_reproducible(self):
        """Per-call seeded RNGs: results are identical run to run no
        matter how many alternating iterations happen."""
        problem = make_random_problem(13, n_nodes=20, budget_fraction=0.3)
        a = optimize(problem, "random+madfs", seed=5)
        b = optimize(problem, "random+madfs", seed=5)
        assert a.plan == b.plan
        assert a.iterations == b.iterations

    def test_random_iterations_draw_fresh_rngs(self):
        """Different iterations must see different scan orders (the old
        shared-RNG bug replayed one stream across the alternating loop)."""
        from repro.core.optimizer import _random_selector
        from repro.graph.topo import kahn_topological_order

        problem = make_random_problem(14, n_nodes=20, budget_fraction=0.3)
        order = kahn_topological_order(problem.graph)
        selector = _random_selector(seed=7)
        first = [selector(problem, order) for _ in range(4)]
        selector = _random_selector(seed=7)
        second = [selector(problem, order) for _ in range(4)]
        assert first == second  # call-index determinism
        assert len(set(first)) > 1  # not one frozen shuffle per run


class TestQuality:
    def test_sc_beats_fig7_baselines(self):
        problem = make_fig7_problem()
        sc = optimize(problem, "sc").total_score
        for method in ("greedy", "random", "ratio"):
            assert sc >= optimize(problem, method, seed=3).total_score

    def test_sc_dominates_selection_baselines_statistically(self):
        total = {"sc": 0.0, "greedy": 0.0, "random": 0.0, "ratio": 0.0}
        for seed in range(12):
            problem = make_random_problem(seed, n_nodes=18,
                                          budget_fraction=0.25)
            for method in total:
                total[method] += optimize(problem, method,
                                          seed=seed).total_score
        assert total["sc"] >= max(total["greedy"], total["random"],
                                  total["ratio"])


class TestSummary:
    def test_plan_summary_fields(self):
        problem = make_fig7_problem()
        result = optimize(problem, "sc")
        summary = plan_summary(problem, result)
        assert summary["n_nodes"] == 6
        assert summary["total_score"] == 210
        assert summary["peak_memory"] <= summary["memory_budget"]
        assert summary["n_flagged"] == len(result.plan.flagged)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000),
       method=st.sampled_from([m for m in OPTIMIZER_METHODS
                               if m not in ("mkp+sa",)]))
def test_property_all_methods_feasible_on_random_instances(seed, method):
    problem = make_random_problem(seed, n_nodes=14, budget_fraction=0.3)
    result = optimize(problem, method=method, seed=seed)
    assert is_feasible(problem.graph, result.plan.order,
                       result.plan.flagged, problem.memory_budget)
