"""Tests for adaptive re-planning (repro.engine.adaptive) and the
persistent metadata store (repro.metadata.store)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import optimize
from repro.core.plan import Plan
from repro.core.problem import ScProblem
from repro.engine.adaptive import AdaptiveController, sync_points
from repro.errors import ValidationError
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile
from repro.metadata.store import MetadataStore, RecurringPipeline
from repro.core.speedup import compute_speedup_scores
from tests.conftest import make_random_problem


def chain_with_sizes(sizes: dict[str, float]) -> DependencyGraph:
    graph = DependencyGraph()
    names = list(sizes)
    for name, size in sizes.items():
        graph.add_node(name, size=size, compute_time=0.5)
    for a, b in zip(names, names[1:]):
        graph.add_edge(a, b)
    compute_speedup_scores(graph, DeviceProfile())
    return graph


def diamond_graph() -> DependencyGraph:
    graph = DependencyGraph()
    for name, size in (("a", 1.0), ("b", 0.6), ("c", 0.6), ("d", 0.2)):
        graph.add_node(name, size=size, compute_time=0.3)
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("b", "d")
    graph.add_edge("c", "d")
    compute_speedup_scores(graph, DeviceProfile())
    return graph


class TestSyncPoints:
    def test_unflagged_plan_syncs_everywhere(self):
        graph = diamond_graph()
        plan = Plan.unoptimized(["a", "b", "c", "d"])
        assert sync_points(graph, plan) == [0, 1, 2, 3]

    def test_flagged_residency_blocks_sync(self):
        graph = diamond_graph()
        plan = Plan.make(["a", "b", "c", "d"], {"a"})
        # 'a' stays resident until 'c' executes (last consumer)
        assert sync_points(graph, plan) == [2, 3]

    def test_last_position_always_sync(self):
        graph = diamond_graph()
        plan = Plan.make(["a", "b", "c", "d"], {"a", "b", "c"})
        assert sync_points(graph, plan)[-1] == 3


class TestAdaptiveController:
    def test_no_drift_no_replans(self):
        graph = diamond_graph()
        truth = {v: graph.size_of(v) for v in graph.nodes()}
        controller = AdaptiveController()
        report = controller.refresh(graph, truth, memory_budget=1.2)
        assert report.n_replans == 0
        assert set(report.executed) == set(graph.nodes())

    def test_no_drift_matches_oracle(self):
        graph = diamond_graph()
        truth = {v: graph.size_of(v) for v in graph.nodes()}
        controller = AdaptiveController()
        report = controller.refresh(graph, truth, memory_budget=1.2)
        oracle = controller.oracle_time(graph, truth, memory_budget=1.2)
        assert report.total_time == pytest.approx(oracle, rel=0.15)

    def test_uniform_growth_triggers_replan(self):
        graph = chain_with_sizes(
            {f"n{i}": 0.5 for i in range(8)})
        truth = {v: 3.0 * graph.size_of(v) for v in graph.nodes()}
        controller = AdaptiveController(drift_threshold=0.25)
        report = controller.refresh(graph, truth, memory_budget=1.0)
        assert report.n_replans >= 1

    def test_adaptive_beats_stale_on_shrunk_data(self):
        # Estimates say nodes are too big to flag (3 GB vs a 1 GB budget);
        # reality shrank 6x, so everything is flaggable. The stale plan
        # flags nothing; the adaptive one discovers the shrink after its
        # first epoch and re-plans the rest with flags.
        graph = chain_with_sizes({f"n{i}": 3.0 for i in range(10)})
        truth = {v: graph.size_of(v) / 6.0 for v in graph.nodes()}
        controller = AdaptiveController(drift_threshold=0.25,
                                        check_window=2)
        adaptive = controller.refresh(graph, truth, memory_budget=1.0)
        stale = controller.stale_time(graph, truth, memory_budget=1.0)
        assert adaptive.n_replans >= 1
        assert adaptive.total_time < stale

    def test_adaptive_not_much_worse_than_stale_on_growth(self):
        # when reality grew past the budget both plans degrade to spilled
        # writes; adaptation must not add meaningful overhead
        graph = chain_with_sizes({f"n{i}": 0.5 for i in range(10)})
        truth = {v: 3.0 * graph.size_of(v) for v in graph.nodes()}
        controller = AdaptiveController(drift_threshold=0.25)
        adaptive = controller.refresh(graph, truth, memory_budget=1.0)
        stale = controller.stale_time(graph, truth, memory_budget=1.0)
        assert adaptive.total_time <= stale * 1.10

    def test_missing_truth_rejected(self):
        graph = diamond_graph()
        with pytest.raises(ValidationError):
            AdaptiveController().refresh(graph, {"a": 1.0},
                                         memory_budget=1.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValidationError):
            AdaptiveController(drift_threshold=0.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            AdaptiveController(check_window=0)

    def test_segments_cover_plan_once(self):
        graph = diamond_graph()
        truth = {v: 1.5 * graph.size_of(v) for v in graph.nodes()}
        report = AdaptiveController(drift_threshold=0.1).refresh(
            graph, truth, memory_budget=1.2)
        executed = report.executed
        assert sorted(executed) == sorted(graph.nodes())
        assert len(executed) == len(set(executed))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), factor=st.floats(0.3, 3.0))
    def test_random_graphs_complete_and_bounded(self, seed, factor):
        problem = make_random_problem(seed, n_nodes=10,
                                      budget_fraction=0.3)
        graph = problem.graph
        truth = {v: factor * max(graph.size_of(v), 1e-6)
                 for v in graph.nodes()}
        controller = AdaptiveController(drift_threshold=0.2)
        report = controller.refresh(graph, truth,
                                    memory_budget=problem.memory_budget)
        assert sorted(report.executed) == sorted(graph.nodes())
        assert report.total_time > 0


class TestAdaptiveWithTieredStore:
    """Adaptive refresh + spill + feedback in one run: the adaptive
    controller re-plans mid-run *while* the tiered store spills, and
    the finished trace still carries feedback-grade telemetry."""

    def _spilling_setup(self, n=10, size=0.8, growth=3.0):
        graph = chain_with_sizes({f"n{i}": size for i in range(n)})
        truth = {v: growth * graph.size_of(v) for v in graph.nodes()}
        return graph, truth

    def _options(self, adapt=None, codec="none"):
        from repro.engine.simulator import SimulatorOptions
        from repro.store import SpillConfig, TierSpec

        return SimulatorOptions(spill=SpillConfig(
            tiers=(TierSpec("ssd", 2.0), TierSpec("disk")),
            codec=codec, adapt=adapt))

    def test_replans_and_spills_in_one_run(self):
        graph, truth = self._spilling_setup()
        controller = AdaptiveController(drift_threshold=0.25,
                                        options=self._options())
        report = controller.refresh(graph, truth, memory_budget=1.0)
        assert report.n_replans >= 1
        assert sorted(report.executed) == sorted(graph.nodes())
        tiered = report.trace.extras["tiered_store"]
        assert tiered["spill_count"] > 0
        # the budget invariant survives mid-run re-planning
        assert report.trace.peak_catalog_usage <= 1.0 + 1e-9

    def test_adaptive_trace_feeds_the_planner(self):
        from repro.feedback import CostFeedback
        from repro.store import SpillConfig, TierSpec

        graph, truth = self._spilling_setup()
        controller = AdaptiveController(drift_threshold=0.25,
                                        options=self._options())
        report = controller.refresh(graph, truth, memory_budget=1.0)
        feedback = CostFeedback.from_trace(report.trace)
        assert feedback.spill_count > 0
        spilled = [t for t in feedback.tiers
                   if t.spill_write_seconds_per_gb is not None]
        assert spilled, "no tier carried observed spill costs"
        budget = feedback.tier_budget(
            1.0, SpillConfig(tiers=(TierSpec("ssd", 2.0),
                                    TierSpec("disk"))))
        assert budget.effective_budget(sum(truth.values())) >= 1.0

    def test_codec_adaptation_during_adaptive_run(self):
        """All three loops at once: drift re-planning, spilling, and
        mid-run codec re-pricing on an incompressible workload."""
        from repro.store import CodecAdaptConfig

        graph, truth = self._spilling_setup()
        for node_id in graph.nodes():
            graph.node(node_id).meta["compressibility"] = 0.0
        controller = AdaptiveController(
            drift_threshold=0.25,
            options=self._options(adapt=CodecAdaptConfig(samples=1),
                                  codec="zlib"))
        report = controller.refresh(graph, truth, memory_budget=1.0)
        tiered = report.trace.extras["tiered_store"]
        assert tiered["spill_count"] > 0
        assert tiered["observed_codec_ratio"] == pytest.approx(1.0)
        adapt = tiered["codec_adapt"]
        assert adapt["enabled"] is True
        assert any(record["switched_to"] == "none"
                   for record in adapt["tiers"].values())
        assert sorted(report.executed) == sorted(graph.nodes())


class TestMetadataStore:
    def test_round_trip(self, tmp_path):
        store = MetadataStore(tmp_path)
        store.record_run("daily", {"a": 1.0, "b": 2.0}, {"a": 0.5})
        loaded = store.load("daily")
        assert loaded.node("a").estimated_size == pytest.approx(1.0)
        assert loaded.node("a").estimated_compute_time == pytest.approx(0.5)

    def test_accumulates_over_runs(self, tmp_path):
        store = MetadataStore(tmp_path)
        store.record_run("w", {"a": 1.0})
        store.record_run("w", {"a": 3.0})
        assert store.load("w").node("a").estimated_size == \
            pytest.approx(2.0)

    def test_lists_workloads(self, tmp_path):
        store = MetadataStore(tmp_path)
        store.record_run("w1", {"a": 1.0})
        store.record_run("w2", {"a": 1.0})
        assert store.workloads() == ["w1", "w2"]
        assert "w1" in store
        assert "w3" not in store

    def test_invalid_names_rejected(self, tmp_path):
        store = MetadataStore(tmp_path)
        for bad in ("", "../evil", ".hidden"):
            with pytest.raises(ValidationError):
                store.record_run(bad, {"a": 1.0})

    def test_corrupt_file_raises(self, tmp_path):
        store = MetadataStore(tmp_path)
        (tmp_path / "w.json").write_text("{not json")
        with pytest.raises(ValidationError):
            store.load("w")

    def test_missing_workload_is_empty(self, tmp_path):
        store = MetadataStore(tmp_path)
        metadata = store.load("never_seen")
        assert "x" not in metadata

    def test_drift_report(self, tmp_path):
        store = MetadataStore(tmp_path)
        for size in (1.0, 1.0, 1.0, 2.0, 2.0):
            store.record_run("w", {"a": size, "b": 1.0})
        report = store.drift("w", recent=2)
        assert report.node_ratios["a"] == pytest.approx(2.0, rel=0.2)
        assert report.node_ratios["b"] == pytest.approx(1.0)
        assert report.drifted_nodes(threshold=0.25) == ["a"]
        assert report.max_drift > 0.5

    def test_drift_needs_history(self, tmp_path):
        store = MetadataStore(tmp_path)
        store.record_run("w", {"a": 1.0})
        assert store.drift("w").node_ratios == {}


class TestRecurringPipeline:
    def test_plan_uses_observed_sizes(self, tmp_path):
        graph = diamond_graph()
        store = MetadataStore(tmp_path)
        pipeline = RecurringPipeline(store=store, workload="w")

        # first run: cold start plans from the graph's own estimates
        plan1 = pipeline.plan(graph, memory_budget=1.2)
        assert set(plan1.order) == set(graph.nodes())

        # observe much larger 'a'; next plan must not flag it
        pipeline.observe({v: (10.0 if v == "a" else graph.size_of(v))
                          for v in graph.nodes()})
        plan2 = pipeline.plan(graph, memory_budget=1.2)
        assert "a" not in plan2.flagged

    def test_observe_then_drift(self, tmp_path):
        pipeline = RecurringPipeline(store=MetadataStore(tmp_path),
                                     workload="w")
        for factor in (1.0, 1.0, 1.0, 1.6, 1.6):
            pipeline.observe({"a": factor})
        assert pipeline.drift(recent=2).max_drift > 0.3
