"""Tests for the discrete-event refresh simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import optimize
from repro.core.plan import Plan
from repro.engine.simulator import RefreshSimulator, SimulatorOptions
from repro.engine.storage import StorageDevice
from repro.errors import ExecutionError, ValidationError
from repro.metadata.costmodel import DeviceProfile
from tests.conftest import make_random_problem


def simple_profile() -> DeviceProfile:
    """Round numbers for hand-computable expectations."""
    return DeviceProfile(disk_read_bandwidth=1.0,
                         disk_write_bandwidth=0.5,
                         read_latency=0.0,
                         decode_rate=float("inf"),
                         encode_rate=float("inf"),
                         memory_bandwidth=100.0,
                         compute_rate=1.0,
                         background_interference=0.0,
                         background_parallelism=1.0)


class TestUnoptimizedRun:
    def test_serial_accounting(self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 1.0
        plan = Plan.unoptimized(["a", "b", "c", "d"])
        trace = RefreshSimulator(profile=simple_profile()).run(
            chain_graph, plan, memory_budget=0.0)
        # node a: no parents, compute 1, write 1/0.5 = 2  -> 3
        # b, c, d: read 1 (disk), compute 1, write 2      -> 4 each
        assert trace.end_to_end_time == pytest.approx(3 + 4 * 3)
        assert trace.table_read_latency == pytest.approx(3.0)
        assert trace.write_latency == pytest.approx(8.0)
        assert trace.compute_latency == pytest.approx(4.0)
        assert trace.peak_catalog_usage == 0.0

    def test_base_inputs_charged(self, chain_graph):
        chain_graph.node("a").meta["base_input_gb"] = 5.0
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 0.0
        plan = Plan.unoptimized(["a", "b", "c", "d"])
        trace = RefreshSimulator(profile=simple_profile()).run(
            chain_graph, plan, memory_budget=0.0)
        assert trace.nodes[0].read_disk == pytest.approx(5.0)


class TestFlaggedRun:
    def test_flagged_skips_blocking_write_and_disk_reads(self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 10.0
        plan = Plan.make(["a", "b", "c", "d"], {"a", "b", "c"})
        trace = RefreshSimulator(profile=simple_profile()).run(
            chain_graph, plan, memory_budget=100.0)
        # all intermediate reads come from memory
        assert trace.table_read_disk_latency == 0.0
        assert trace.write_latency == pytest.approx(2.0)  # only sink d
        # ample compute time: background writes fully hidden
        assert trace.end_to_end_time == pytest.approx(
            trace.compute_finished_at)

    def test_flagged_run_not_slower(self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 1.0
        simulator = RefreshSimulator(profile=simple_profile())
        base = simulator.run(chain_graph,
                             Plan.unoptimized(["a", "b", "c", "d"]), 0.0)
        flagged = simulator.run(
            chain_graph, Plan.make(["a", "b", "c", "d"], {"a", "b", "c"}),
            100.0)
        assert flagged.end_to_end_time < base.end_to_end_time

    def test_run_ends_when_background_drains(self, chain_graph):
        # zero compute: the last background write dominates the tail
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 0.0
        plan = Plan.make(["a", "b", "c", "d"], {"a", "b", "c"})
        trace = RefreshSimulator(profile=simple_profile()).run(
            chain_graph, plan, memory_budget=100.0)
        assert trace.background_drained_at > trace.compute_finished_at
        assert trace.end_to_end_time == trace.background_drained_at


class TestOverflowPolicies:
    def test_spill_when_budget_too_small(self, chain_graph):
        plan = Plan.make(["a", "b", "c", "d"], {"a"})
        trace = RefreshSimulator(profile=simple_profile()).run(
            chain_graph, plan, memory_budget=0.5)  # a (1.0) cannot fit
        assert trace.nodes[0].write > 0  # spilled to a blocking write
        assert trace.peak_catalog_usage == 0.0

    def test_error_policy_raises(self, chain_graph):
        plan = Plan.make(["a", "b", "c", "d"], {"a"})
        simulator = RefreshSimulator(
            profile=simple_profile(),
            options=SimulatorOptions(on_overflow="error"))
        with pytest.raises(ExecutionError):
            simulator.run(chain_graph, plan, memory_budget=0.5)

    def test_invalid_options(self):
        with pytest.raises(ValidationError):
            SimulatorOptions(on_overflow="panic")
        with pytest.raises(ValidationError):
            SimulatorOptions(compute_penalty=-0.1)

    def test_compute_penalty_slows_compute(self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 1.0
        plan = Plan.unoptimized(["a", "b", "c", "d"])
        slow = RefreshSimulator(
            profile=simple_profile(),
            options=SimulatorOptions(compute_penalty=0.5)).run(
                chain_graph, plan, 0.0)
        assert slow.compute_latency == pytest.approx(6.0)


class TestStorageDevice:
    def test_background_serialization(self):
        device = StorageDevice(profile=simple_profile())
        first = device.submit_background_write("a", 1.0, now=0.0)
        second = device.submit_background_write("b", 1.0, now=0.0)
        assert first == pytest.approx(2.0)
        assert second == pytest.approx(4.0)  # waits for the first
        assert device.drained_at() == pytest.approx(4.0)

    def test_interference_inflates_foreground(self):
        profile = DeviceProfile(disk_read_bandwidth=1.0,
                                disk_write_bandwidth=1.0,
                                read_latency=0.0,
                                decode_rate=float("inf"),
                                encode_rate=float("inf"),
                                background_interference=0.5,
                                background_parallelism=1.0)
        device = StorageDevice(profile=profile)
        assert device.read_duration(1.0, now=0.0) == pytest.approx(1.0)
        device.submit_background_write("x", 10.0, now=0.0)
        assert device.read_duration(1.0, now=1.0) == pytest.approx(1.5)


class TestInvariants:
    def test_budget_never_exceeded(self):
        for seed in range(10):
            problem = make_random_problem(seed, n_nodes=15,
                                          budget_fraction=0.3)
            plan = optimize(problem, "sc").plan
            trace = RefreshSimulator().run(problem.graph, plan,
                                           problem.memory_budget)
            assert trace.peak_catalog_usage <= \
                problem.memory_budget + 1e-9

    def test_invalid_order_rejected(self, diamond_graph):
        plan = Plan.unoptimized(["d", "a", "b", "c"])
        with pytest.raises(Exception):
            RefreshSimulator().run(diamond_graph, plan, 0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_sc_never_slower_than_unoptimized(seed):
    problem = make_random_problem(seed, n_nodes=14, budget_fraction=0.4)
    graph = problem.graph
    rng = random.Random(seed)
    for node_id in graph.nodes():
        node = graph.node(node_id)
        node.compute_time = rng.uniform(0.0, 3.0)
        node.score = None or node.score
    simulator = RefreshSimulator()
    base = simulator.run(graph, optimize(problem, "none").plan,
                         problem.memory_budget)
    sc = simulator.run(graph, optimize(problem, "sc").plan,
                       problem.memory_budget)
    assert sc.end_to_end_time <= base.end_to_end_time * 1.02
    assert sc.peak_catalog_usage <= problem.memory_budget + 1e-9


class TestResumableState:
    """The segment-wise API must compose to exactly one-shot runs."""

    def test_segments_equal_single_run(self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 1.0
        plan = Plan.make(["a", "b", "c", "d"], {"a", "b"})
        simulator = RefreshSimulator(profile=simple_profile())
        whole = simulator.run(chain_graph, plan, memory_budget=100.0)

        state = simulator.begin(100.0)
        simulator.run_segment(chain_graph, ["a", "b"], plan.flagged, state)
        simulator.run_segment(chain_graph, ["c", "d"], plan.flagged, state)
        pieced = simulator.finish(state, 100.0)

        assert pieced.end_to_end_time == pytest.approx(
            whole.end_to_end_time)
        assert pieced.peak_catalog_usage == pytest.approx(
            whole.peak_catalog_usage)
        assert [t.node_id for t in pieced.nodes] == \
            [t.node_id for t in whole.nodes]

    def test_resident_parent_read_from_memory_across_segments(
            self, chain_graph):
        for node_id in chain_graph.nodes():
            chain_graph.node(node_id).compute_time = 0.0
        simulator = RefreshSimulator(profile=simple_profile())
        state = simulator.begin(100.0)
        simulator.run_segment(chain_graph, ["a"], frozenset({"a"}), state)
        assert state.resident_bytes > 0
        simulator.run_segment(chain_graph, ["b"], frozenset(), state)
        trace_b = state.traces[-1]
        assert trace_b.read_memory > 0
        assert trace_b.read_disk == 0

    def test_resident_bytes_drop_after_release(self, chain_graph):
        simulator = RefreshSimulator(profile=simple_profile())
        state = simulator.begin(100.0)
        simulator.run_segment(chain_graph, ["a"], frozenset({"a"}), state)
        before = state.resident_bytes
        simulator.run_segment(chain_graph, ["b", "c", "d"], frozenset(),
                              state)
        simulator.finish(state, 100.0)
        assert state.resident_bytes < before

    def test_negative_budget_rejected_in_begin(self):
        with pytest.raises(ValidationError):
            RefreshSimulator(profile=simple_profile()).begin(-1.0)

    def test_flag_changes_between_segments_respected(self, chain_graph):
        # a node flagged by a later segment's plan behaves like any flag
        simulator = RefreshSimulator(profile=simple_profile())
        state = simulator.begin(100.0)
        simulator.run_segment(chain_graph, ["a"], frozenset(), state)
        simulator.run_segment(chain_graph, ["b"], frozenset({"b"}), state)
        assert state.traces[0].flagged is False
        assert state.traces[1].flagged is True

    @given(seed=st.integers(0, 500), cut=st.integers(1, 14))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_cut_equals_whole_run(self, seed, cut):
        problem = make_random_problem(seed, n_nodes=15,
                                      budget_fraction=0.4)
        plan = optimize(problem, "sc").plan
        simulator = RefreshSimulator()
        whole = simulator.run(problem.graph, plan, problem.memory_budget)

        state = simulator.begin(problem.memory_budget)
        order = list(plan.order)
        simulator.run_segment(problem.graph, order[:cut], plan.flagged,
                              state)
        simulator.run_segment(problem.graph, order[cut:], plan.flagged,
                              state)
        pieced = simulator.finish(state, problem.memory_budget)
        assert pieced.end_to_end_time == pytest.approx(
            whole.end_to_end_time, rel=1e-9)
