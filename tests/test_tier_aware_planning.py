"""Spill-aware planning: TierAwareBudget, expected tiers, arbitration.

Covers the planning side (effective budgets, tier discounts, plan
annotations, Controller/CLI wiring) and the runtime side (stall-vs-spill
cost arbitration) of the tier-aware extension.
"""

import math

import pytest

from repro.core.optimizer import optimize, plan_summary
from repro.core.plan import Plan
from repro.core.problem import ScProblem, TierAwareBudget, TierCapacity
from repro.core.residency import assign_expected_tiers
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.errors import GraphError, ValidationError
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)


def _graph(seed=0, n_nodes=24):
    return WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=0.5),
        seed=seed)


class TestTierAwareBudget:
    def test_discounts_reflect_device_speed(self):
        """A faster tier is worth more of a RAM byte; every discount
        stays within [0, 1]."""
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0), TierSpec("disk")))
        budget = TierAwareBudget.from_spill(4.0, spill)
        by_name = {t.name: t for t in budget.tiers}
        assert 0.0 < by_name["disk"].discount < by_name["ssd"].discount < 1.0
        assert by_name["ssd"].penalty_seconds_per_gb < \
            by_name["disk"].penalty_seconds_per_gb

    def test_effective_budget_adds_discounted_capacity(self):
        spill = SpillConfig(tiers=(TierSpec("ssd", 8.0),))
        budget = TierAwareBudget.from_spill(4.0, spill)
        expected = 4.0 + 8.0 * budget.tiers[0].discount
        assert budget.effective_budget() == pytest.approx(expected)

    def test_unbounded_tier_clamps(self):
        spill = SpillConfig(tiers=(TierSpec("disk"),))
        budget = TierAwareBudget.from_spill(1.0, spill)
        assert math.isinf(budget.effective_budget())
        clamped = budget.effective_budget(clamp=10.0)
        assert clamped == pytest.approx(
            1.0 + 10.0 * budget.tiers[0].discount)

    def test_worthless_tier_contributes_nothing(self):
        """A tier as slow as the warehouse itself earns discount 0."""
        crawl = DeviceProfile(disk_read_bandwidth=1e-6,
                              disk_write_bandwidth=1e-6,
                              decode_rate=math.inf,
                              encode_rate=math.inf)
        spill = SpillConfig(tiers=(
            TierSpec("tape", 100.0, profile=crawl),))
        budget = TierAwareBudget.from_spill(2.0, spill)
        assert budget.tiers[0].discount == 0.0
        assert budget.effective_budget() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TierCapacity(name="x", capacity=1.0, discount=1.5,
                         penalty_seconds_per_gb=0.0)
        with pytest.raises(ValidationError):
            TierAwareBudget(ram=-1.0)


class TestScProblemTierBudget:
    def test_effective_budget_defaults_to_ram(self):
        graph = _graph()
        problem = ScProblem(graph=graph, memory_budget=2.0)
        assert problem.effective_budget == 2.0

    def test_effective_budget_clamps_to_graph_size(self):
        graph = _graph()
        spill = SpillConfig(tiers=(TierSpec("disk"),))
        problem = ScProblem(
            graph=graph, memory_budget=1.0,
            tier_budget=TierAwareBudget.from_spill(1.0, spill))
        assert problem.effective_budget <= 1.0 + graph.total_size()
        assert problem.effective_budget > 1.0

    def test_ram_mismatch_rejected(self):
        graph = _graph()
        spill = SpillConfig(tiers=(TierSpec("disk"),))
        with pytest.raises(ValidationError, match="must match"):
            ScProblem(graph=graph, memory_budget=2.0,
                      tier_budget=TierAwareBudget.from_spill(1.0, spill))

    def test_oversized_for_ram_not_excluded_with_tiers(self):
        """A node bigger than RAM but within the effective budget stays
        a flagging candidate — the runtime parks it in a lower tier."""
        problem = ScProblem.from_tables(
            edges=[("big", "c")], sizes={"big": 5.0, "c": 1.0},
            scores={"big": 3.0, "c": 1.0}, memory_budget=2.0)
        assert "big" in problem.excluded_nodes()
        spill = SpillConfig(tiers=(TierSpec("disk"),))
        tiered = ScProblem.from_tables(
            edges=[("big", "c")], sizes={"big": 5.0, "c": 1.0},
            scores={"big": 3.0, "c": 1.0}, memory_budget=2.0,
            tier_budget=TierAwareBudget.from_spill(2.0, spill))
        assert "big" not in tiered.excluded_nodes()

    def test_node_no_single_tier_can_host_stays_excluded(self):
        """Finite hierarchy: the summed effective budget may exceed a
        node that no individual tier can host — flagging it would just
        strip the flag at runtime after futile demotions, so it must
        stay in V_exclude, and optimize() (which solves on a shadow
        problem) must honor the same cap."""
        spill = SpillConfig(tiers=(TierSpec("ssd", 2.0),))
        problem = ScProblem.from_tables(
            edges=[("big", "c")], sizes={"big": 3.0, "c": 1.0},
            scores={"big": 9.0, "c": 1.0}, memory_budget=2.0,
            tier_budget=TierAwareBudget.from_spill(2.0, spill))
        assert problem.effective_budget > 3.0  # the trap this guards
        assert "big" in problem.excluded_nodes()
        plan = optimize(problem, method="sc").plan
        assert "big" not in plan.flagged
        assert "big" not in plan.tier_map()


class TestTierAwareOptimize:
    def _problems(self, seed=0, fraction=0.1):
        graph = _graph(seed)
        ram = fraction * graph.total_size()
        spill = SpillConfig(tiers=(TierSpec("ssd", 2 * ram),
                                   TierSpec("disk")))
        blind = ScProblem(graph=graph, memory_budget=ram)
        aware = ScProblem(
            graph=graph, memory_budget=ram,
            tier_budget=TierAwareBudget.from_spill(ram, spill))
        return blind, aware

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flags_more_when_spilling_is_cheap(self, seed):
        blind, aware = self._problems(seed)
        blind_result = optimize(blind, method="sc")
        aware_result = optimize(aware, method="sc")
        assert (blind.total_score(aware_result.plan.flagged)
                >= blind.total_score(blind_result.plan.flagged))
        assert (len(aware_result.plan.flagged)
                >= len(blind_result.plan.flagged))

    def test_plan_records_expected_tiers(self):
        _, aware = self._problems()
        plan = optimize(aware, method="sc").plan
        tier_map = plan.tier_map()
        assert set(tier_map) == set(plan.flagged)
        assert set(tier_map.values()) <= {"ram", "ssd", "disk"}
        # a starved RAM budget cannot host every flagged byte in RAM
        assert any(tier != "ram" for tier in tier_map.values())

    def test_blind_plan_records_no_tiers(self):
        blind, _ = self._problems()
        assert optimize(blind, method="sc").plan.expected_tiers == ()

    def test_summary_reports_effective_budget_and_placement(self):
        _, aware = self._problems()
        result = optimize(aware, method="sc")
        summary = plan_summary(aware, result)
        assert summary["effective_budget"] > summary["memory_budget"]
        assert sum(summary["planned_tiers"].values()) == \
            summary["n_flagged"]

    def test_method_none_with_tier_budget(self):
        _, aware = self._problems()
        result = optimize(aware, method="none")
        assert result.plan.flagged == frozenset()
        assert result.plan.expected_tiers == ()

    def test_plan_json_roundtrip_keeps_tiers(self):
        _, aware = self._problems()
        plan = optimize(aware, method="sc").plan
        assert Plan.from_json(plan.to_json()) == plan

    def test_expected_tiers_must_name_flagged_nodes(self):
        with pytest.raises(GraphError, match="unflagged"):
            Plan(order=("a", "b"), flagged=frozenset({"a"}),
                 expected_tiers=(("b", "ram"),))


class TestAssignExpectedTiers:
    def test_overflow_cascades_down_the_hierarchy(self):
        """a, b, c all stay resident until d consumes them: RAM takes
        the first, the SSD the second, and the third overflows to
        disk."""
        graph = DependencyGraph()
        graph.add_node("d", size=0.1, score=0.0)
        for node_id in ("a", "b", "c"):
            graph.add_node(node_id, size=1.0, score=1.0)
            graph.add_edge(node_id, "d")
        order = ["a", "b", "c", "d"]
        placement = assign_expected_tiers(
            graph, order, {"a", "b", "c"}, ram_budget=1.0,
            tiers=[("ssd", 1.0), ("disk", math.inf)])
        assert placement == {"a": "ram", "b": "ssd", "c": "disk"}

    def test_empty_flagged_is_empty(self):
        graph = DependencyGraph()
        graph.add_node("a", size=1.0, score=1.0)
        assert assign_expected_tiers(graph, ["a"], set(), 1.0, []) == {}

    def test_stray_flagged_node_rejected(self):
        graph = DependencyGraph()
        graph.add_node("a", size=1.0, score=1.0)
        with pytest.raises(GraphError):
            assign_expected_tiers(graph, ["a"], {"ghost"}, 1.0, [])


class TestControllerTierAware:
    def test_plan_tier_aware_requires_spill(self):
        graph = _graph()
        with pytest.raises(ValidationError, match="spill configuration"):
            Controller().plan(graph, 1.0, tier_aware=True)

    def test_refresh_tier_aware_end_to_end(self):
        graph = _graph()
        ram = 0.1 * graph.total_size()
        spill = SpillConfig(tiers=(TierSpec("ssd", 2 * ram),
                                   TierSpec("disk")))
        controller = Controller(options=SimulatorOptions(spill=spill))
        blind = controller.refresh(graph, ram, method="sc")
        aware = controller.refresh(graph, ram, method="sc",
                                   tier_aware=True)
        assert len(aware.nodes) == graph.n
        assert aware.peak_catalog_usage <= ram + 1e-9
        # the tier-aware plan completes faster: cheap spills beat
        # blocking warehouse writes for the extra flagged nodes
        assert aware.end_to_end_time < blind.end_to_end_time

    def test_minidb_tier_budget_matches_executor_tier(self):
        budget = Controller().minidb_tier_budget(1.0)
        assert [t.name for t in budget.tiers] == ["spill-disk"]

    def test_refresh_on_minidb_tier_aware_requires_spill_dir(self,
                                                             tmp_path):
        np = pytest.importorskip("numpy")
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.db.table import Table

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(0)
        db.register_table("events", Table({
            "user": rng.integers(0, 5, 100),
            "amount": rng.uniform(0, 10, 100),
        }))
        workload = SqlWorkload(db=db, definitions=[
            MvDefinition("mv_a",
                         "SELECT user, amount FROM events "
                         "WHERE amount > 1")])
        workload.profile()
        with pytest.raises(ValidationError, match="spill_dir"):
            Controller().refresh_on_minidb(workload, 1.0,
                                           tier_aware=True)


class TestStallSpillArbitration:
    def _two_big_nodes(self):
        graph = DependencyGraph()
        for node_id in ("a", "b"):
            graph.add_node(node_id, size=1.9, score=1.9,
                           compute_time=0.1)
        plan = Plan(order=("a", "b"), flagged=frozenset({"a", "b"}))
        return graph, plan

    def _run(self, arbitrate, backend="simulator", workers=1):
        graph, plan = self._two_big_nodes()
        options = SimulatorOptions(spill=SpillConfig(
            tiers=(TierSpec("disk"),), arbitrate=arbitrate))
        return Controller(options=options).refresh(
            graph, 2.0, plan=plan, method="sc", backend=backend,
            workers=workers)

    def test_stall_wins_when_drain_is_imminent(self):
        """RAM holds one output; the first output's background drain
        finishes long before a slow-disk spill would — arbitration must
        wait instead of demoting."""
        trace = self._run(arbitrate=True)
        report = trace.extras["tiered_store"]
        node_b = next(n for n in trace.nodes if n.node_id == "b")
        assert node_b.admission == "stall"
        assert node_b.stall > 0
        assert report["spill_count"] == 0
        assert report["arbitration"]["stall_wins"] == 1
        assert report["arbitration"]["spill_wins"] == 0
        assert trace.stall_avoided_time > 0

    def test_arbitrate_false_restores_spill_always_wins(self):
        trace = self._run(arbitrate=False)
        report = trace.extras["tiered_store"]
        assert report["spill_count"] == 1
        assert report["arbitration"]["enabled"] is False
        assert report["arbitration"]["stall_wins"] == 0
        assert all(n.admission == "" for n in trace.nodes)

    def test_arbitration_beats_always_spill_here(self):
        stall = self._run(arbitrate=True)
        spill = self._run(arbitrate=False)
        assert stall.end_to_end_time < spill.end_to_end_time

    def test_workers1_parallel_matches_serial_arbitration(self):
        serial = self._run(arbitrate=True)
        parallel = self._run(arbitrate=True, backend="parallel")
        assert serial.end_to_end_time == \
            pytest.approx(parallel.end_to_end_time)
        assert serial.extras == parallel.extras
        for a, b in zip(serial.nodes, parallel.nodes):
            assert a.admission == b.admission
            assert a.stall == pytest.approx(b.stall)

    def test_spill_wins_when_drain_is_distant(self):
        """A fast SSD spill against a far-off drain: demoting must win
        and be recorded as the chosen action."""
        graph = DependencyGraph()
        # 'a' stays resident (consumer at the end); 'b' must displace it
        graph.add_node("a", size=1.5, score=1.0, compute_time=0.01)
        graph.add_node("b", size=1.5, score=1.0, compute_time=0.01)
        graph.add_node("c", size=0.1, score=1.0, compute_time=0.01)
        graph.add_edge("a", "c")
        graph.add_edge("b", "c")
        plan = Plan(order=("a", "b", "c"),
                    flagged=frozenset({"a", "b"}))
        slow_drain = DeviceProfile(background_parallelism=0.01)
        options = SimulatorOptions(spill=SpillConfig(
            tiers=(TierSpec("ssd"),), arbitrate=True))
        trace = Controller(profile=slow_drain,
                           options=options).refresh(
            graph, 2.0, plan=plan, method="sc")
        report = trace.extras["tiered_store"]
        node_b = next(n for n in trace.nodes if n.node_id == "b")
        assert node_b.admission == "spill"
        assert report["spill_count"] >= 1
        assert report["arbitration"]["spill_wins"] == 1
        assert report["arbitration"]["stall_wins"] == 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_multiworker_arbitration_stays_within_budget(self, workers):
        graph = WorkloadGenerator().generate(
            GeneratedWorkloadConfig(n_nodes=24, height_width_ratio=0.25),
            seed=3)
        ram = 0.15 * graph.total_size()
        spill = SpillConfig(tiers=(TierSpec("ssd", ram),
                                   TierSpec("disk")))
        controller = Controller(options=SimulatorOptions(spill=spill))
        plan = controller.plan(graph, ram, method="sc", tier_aware=True)
        trace = controller.refresh(graph, ram, plan=plan, method="sc",
                                   backend="parallel", workers=workers)
        assert len(trace.nodes) == graph.n
        assert trace.peak_catalog_usage <= ram + 1e-9
        assert trace.extras["tiered_store"]["tiers"][0]["peak"] <= \
            ram + 1e-9
