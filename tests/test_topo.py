"""Tests for topological orders and tie-breaking."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CycleError, GraphError
from repro.graph.dag import DependencyGraph
from repro.graph.generators import generate_random_dag
from repro.graph.topo import (
    check_topological_order,
    dfs_topological_order,
    is_topological_order,
    kahn_topological_order,
)


class TestKahn:
    def test_respects_dependencies(self, diamond_graph):
        order = kahn_topological_order(diamond_graph)
        assert is_topological_order(diamond_graph, order)
        assert order[0] == "a" and order[-1] == "d"

    def test_insertion_order_tie_break(self):
        graph = DependencyGraph()
        for name in ("c", "a", "b"):
            graph.add_node(name)
        assert kahn_topological_order(graph) == ["c", "a", "b"]

    def test_custom_tie_break(self, diamond_graph):
        order = kahn_topological_order(
            diamond_graph, tie_break=lambda v: (-diamond_graph.size_of(v),))
        assert order == ["a", "c", "b", "d"]  # bigger c first

    def test_cycle_raises(self):
        graph = DependencyGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(CycleError):
            kahn_topological_order(graph)


class TestDfs:
    def test_valid_topological_order(self, diamond_graph):
        order = dfs_topological_order(diamond_graph)
        assert is_topological_order(diamond_graph, order)

    def test_finishes_branch_before_starting_new_one(self):
        # two independent chains; DFS must not interleave them
        graph = DependencyGraph.from_edges(
            [("a1", "a2"), ("a2", "a3"), ("b1", "b2"), ("b2", "b3")])
        order = dfs_topological_order(graph)
        a_positions = [order.index(v) for v in ("a1", "a2", "a3")]
        b_positions = [order.index(v) for v in ("b1", "b2", "b3")]
        assert max(a_positions) < min(b_positions) or \
            max(b_positions) < min(a_positions)

    def test_random_tie_break_varies_with_seed(self):
        graph = generate_random_dag(15, edge_probability=0.2, seed=3)
        orders = {
            tuple(dfs_topological_order(graph, rng=random.Random(seed)))
            for seed in range(8)
        }
        assert len(orders) > 1
        for order in orders:
            assert is_topological_order(graph, list(order))

    def test_tie_break_and_rng_are_exclusive(self, diamond_graph):
        with pytest.raises(GraphError):
            dfs_topological_order(diamond_graph, tie_break=lambda v: (0,),
                                  rng=random.Random(0))

    def test_cycle_raises(self):
        graph = DependencyGraph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "a")])
        with pytest.raises(CycleError):
            dfs_topological_order(graph)


class TestValidation:
    def test_is_topological_order_rejects_wrong_sets(self, diamond_graph):
        assert not is_topological_order(diamond_graph, ["a", "b", "c"])
        assert not is_topological_order(diamond_graph,
                                        ["a", "b", "c", "c"])
        assert not is_topological_order(diamond_graph,
                                        ["d", "a", "b", "c"])

    def test_check_reports_specific_failures(self, diamond_graph):
        with pytest.raises(GraphError, match="entries"):
            check_topological_order(diamond_graph, ["a"])
        with pytest.raises(GraphError, match="unknown"):
            check_topological_order(diamond_graph,
                                    ["a", "b", "c", "ghost"])
        with pytest.raises(GraphError, match="repeats"):
            check_topological_order(diamond_graph, ["a", "b", "c", "c"])
        with pytest.raises(GraphError, match="violates"):
            check_topological_order(diamond_graph, ["d", "a", "b", "c"])


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 40),
       p=st.floats(0.0, 0.5))
def test_property_both_algorithms_emit_valid_orders(seed, n, p):
    graph = generate_random_dag(n, edge_probability=p, seed=seed)
    assert is_topological_order(graph, kahn_topological_order(graph))
    assert is_topological_order(graph, dfs_topological_order(graph))
    assert is_topological_order(
        graph, dfs_topological_order(graph, rng=random.Random(seed)))
