"""The standing experiment orchestrator, end to end.

Covers the declarative config layer (TOML/JSON parsing, the 3.10
fallback parser, axis validation), matrix expansion and structural
pruning, the matrix driver (crash isolation, timeouts, incremental
persistence), resumability (an interrupted matrix resumed with
``resume=True`` re-executes nothing and aggregates bit-identically to
an uninterrupted run), cross-backend determinism (every
serial/parallel-workers=1 cell pair has bit-equal traces), the
``bench matrix`` CLI, and the shared artifact-emission helper behind
the ``bench_*.py`` files.
"""

import json
import pathlib
import threading
import time
from types import SimpleNamespace

import pytest

from repro.bench import orchestrator
from repro.bench.experiment import (
    MatrixConfig,
    TrialSpec,
    _parse_simple_toml,
    expand_matrix,
    load_config,
)
from repro.bench.orchestrator import run_matrix
from repro.bench.report import emit_result_json, result_payload
from repro.bench.trajectory import validate_bench_file
from repro.cli import main
from repro.errors import RunCancelledError, ValidationError

REPO_ROOT = pathlib.Path(__file__).parent.parent
SMOKE_CONFIG = REPO_ROOT / "benchmarks" / "matrix_smoke.toml"

TINY_TOML = """\
[experiment]
name = "tiny"
title = "one-cell matrix"

[axes]
backend = ["simulator"]
workload = ["io1"]
ram_fraction = [0.5]
"""


def small_config(**overrides) -> MatrixConfig:
    """A fast simulated-only matrix (4 cells by default)."""
    kwargs = dict(
        name="orch-small", title="small orchestrator matrix",
        backends=("simulator", "parallel"), workloads=("io1",),
        ram_fractions=(0.5,), codecs=("none", "zlib"), jobs=2)
    kwargs.update(overrides)
    return MatrixConfig(**kwargs)


def bench_bytes(run_dir, date="2026-01-01") -> bytes:
    return (pathlib.Path(run_dir) / f"BENCH_{date}.json").read_bytes()


def load_bench(run) -> dict:
    with open(run.bench_path, encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# config parsing
# ----------------------------------------------------------------------
class TestConfigLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(TINY_TOML, encoding="utf-8")
        config = load_config(str(path))
        assert config.name == "tiny"
        assert config.backends == ("simulator",)
        assert config.codecs == ("none",)  # axis defaults
        assert config.jobs == 2

    def test_load_json(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "experiment": {"name": "j"},
            "axes": {"backend": ["lru"], "workload": ["io1"],
                     "ram_fraction": [0.25]},
            "run": {"jobs": 4},
        }), encoding="utf-8")
        config = load_config(str(path))
        assert config.title == "j"  # defaults to the name
        assert config.jobs == 4

    def test_unknown_section_rejected(self):
        with pytest.raises(ValidationError, match="unknown config"):
            MatrixConfig.from_dict({
                "experiment": {"name": "x"}, "bogus": {},
                "axes": {"backend": ["simulator"], "workload": ["io1"],
                         "ram_fraction": [0.5]}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValidationError, match=r"\[run\]"):
            MatrixConfig.from_dict({
                "experiment": {"name": "x"},
                "axes": {"backend": ["simulator"], "workload": ["io1"],
                         "ram_fraction": [0.5]},
                "run": {"job": 2}})

    def test_missing_required_axis_rejected(self):
        with pytest.raises(ValidationError, match="missing 'workload'"):
            MatrixConfig.from_dict({
                "experiment": {"name": "x"},
                "axes": {"backend": ["simulator"],
                         "ram_fraction": [0.5]}})

    @pytest.mark.parametrize("field,value,match", [
        ("backends", ("turbo",), "unknown backend"),
        ("workloads", ("nope",), "unknown workload"),
        ("codecs", ("lz999",), "unknown codec"),
        ("feedback", ("maybe",), "unknown feedback"),
        ("ram_fractions", (1.5,), "ram_fraction"),
        ("jobs", 0, "jobs"),
        ("trial_timeout_s", -1.0, "trial_timeout_s"),
    ])
    def test_validate_rejects_bad_values(self, field, value, match):
        with pytest.raises(ValidationError, match=match):
            small_config(**{field: value}).validate()


class TestSimpleTomlParser:
    """The Python-3.10 fallback must agree with tomllib on the configs
    this repo actually ships."""

    def test_matches_tomllib_on_smoke_config(self):
        tomllib = pytest.importorskip("tomllib")
        text = SMOKE_CONFIG.read_text(encoding="utf-8")
        assert _parse_simple_toml(text) == tomllib.loads(text)

    def test_values_comments_and_strings(self):
        parsed = _parse_simple_toml(
            '[t]\n'
            'a = [1, 2.5, true, false]  # trailing comment\n'
            's = "has # not a comment"\n'
            'empty = []\n')
        assert parsed == {"t": {"a": [1, 2.5, True, False],
                                "s": "has # not a comment",
                                "empty": []}}

    def test_bad_value_rejected(self):
        with pytest.raises(ValidationError, match="unsupported TOML"):
            _parse_simple_toml("[t]\nv = 2026-01-01\n")

    def test_unterminated_array_rejected(self):
        with pytest.raises(ValidationError, match="unterminated"):
            _parse_simple_toml('[t]\nv = ["a, "b"]\n')

    def test_missing_equals_rejected(self):
        with pytest.raises(ValidationError, match="key = value"):
            _parse_simple_toml("[t]\njust a line\n")


# ----------------------------------------------------------------------
# expansion + pruning
# ----------------------------------------------------------------------
class TestExpansion:
    def test_structural_pruning_rules(self):
        config = MatrixConfig(
            name="p", title="p",
            backends=("simulator", "lru", "minidb"),
            workloads=("io1", "demo"), ram_fractions=(0.5,),
            codecs=("none", "zlib"), feedback=("off", "replan"),
            rung=(False, True))
        trials, pruned = expand_matrix(config)
        by_backend: dict[str, list[TrialSpec]] = {}
        for spec in trials:
            by_backend.setdefault(spec.backend, []).append(spec)
        # lru keeps exactly one plan-free cell per graph workload
        assert [(s.workload, s.codec, s.feedback, s.rung, s.method)
                for s in by_backend["lru"]] == \
            [("io1", "none", "off", False, "lru")]
        # minidb keeps only single-pass demo cells
        assert all(s.workload == "demo" and s.feedback == "off"
                   for s in by_backend["minidb"])
        # graph backends never see the SQL demo
        assert all(s.workload != "demo" for s in by_backend["simulator"])
        reasons = {cell.reason for cell in pruned}
        assert any("no tiers" in reason for reason in reasons)
        assert any("single-pass" in reason for reason in reasons)
        assert any("graph workloads" in reason for reason in reasons)

    def test_trials_sorted_by_id_without_duplicates(self):
        trials, _ = expand_matrix(small_config())
        ids = [spec.trial_id for spec in trials]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids) == 4

    def test_duplicate_axis_values_rejected(self):
        config = small_config(backends=("simulator", "simulator"))
        with pytest.raises(ValidationError, match="duplicate trial id"):
            expand_matrix(config)

    def test_smoke_config_covers_every_backend_and_arm(self):
        """The committed CI smoke matrix really exercises every
        backend plus the codec/feedback/rung arms."""
        config = load_config(str(SMOKE_CONFIG))
        trials, pruned = expand_matrix(config)
        backends = {spec.backend for spec in trials}
        assert backends == {"simulator", "parallel", "lru", "minidb"}
        simulated = [s for s in trials if s.backend == "simulator"]
        assert {s.codec for s in simulated} == {"none", "zlib"}
        assert {s.feedback for s in simulated} == {"off", "replan"}
        assert {s.rung for s in simulated} == {False, True}
        # every simulated cell has a parallel twin for the
        # determinism check, and workers stays 1 so they compare
        assert config.workers == 1
        serial = {s.trial_id for s in simulated}
        twins = {s.trial_id.replace("parallel-", "simulator-", 1)
                 for s in trials if s.backend == "parallel"}
        assert twins == serial
        assert len(trials) == 38 and len(pruned) == 58


# ----------------------------------------------------------------------
# the matrix driver (one shared completed run)
# ----------------------------------------------------------------------
RICH = MatrixConfig(
    name="orch-rich", title="rich orchestrator matrix",
    backends=("simulator", "parallel", "lru"), workloads=("io1",),
    ram_fractions=(0.5,), codecs=("none", "zlib"),
    feedback=("off", "replan"), rung=(False, True), jobs=4)


@pytest.fixture(scope="module")
def rich_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("rich")
    run = run_matrix(RICH, str(run_dir), date="2026-01-01")
    records = orchestrator._load_records(run_dir / "trials")
    return run, records


class TestRunMatrix:
    def test_completes_all_cells(self, rich_run):
        run, _ = rich_run
        assert run.complete and not run.interrupted
        assert run.ok == run.total == 17  # 2*2*2*2 simulated + 1 lru
        assert run.failed == run.timeout == 0

    def test_bench_snapshot_schema_valid(self, rich_run):
        run, _ = rich_run
        payload = load_bench(run)
        assert validate_bench_file(payload, name="rich") == []
        assert payload["experiment"] == "orch-rich"
        totals = payload["data"]["totals"]
        assert "lru+none+fb-off" in totals
        assert "simulator+zlib+fb-replan+rung" in totals
        assert totals["simulator+none+fb-off"]["io1@0.5"] > 0
        assert payload["data"]["failed"] == []
        assert payload["data"]["config"]["name"] == "orch-rich"

    def test_report_has_pivots_and_results(self, rich_run):
        run, _ = rich_run
        report = pathlib.Path(run.report_path).read_text(encoding="utf-8")
        assert "# rich orchestrator matrix" in report
        assert "backend × workload" in report
        assert "codec × RAM fraction" in report
        assert "feedback arm × backend" in report
        assert "rung × backend" in report
        assert "## Failed cells" not in report

    def test_tiered_cells_record_spill_telemetry(self, rich_run):
        _, records = rich_run
        spills = [record["metrics"]["spill_count"]
                  for record in records.values()
                  if record["trial"]["backend"] != "lru"]
        assert any(count > 0 for count in spills)

    def test_replan_cells_record_both_passes(self, rich_run):
        _, records = rich_run
        replanned = [record for record in records.values()
                     if record["trial"]["feedback"] == "replan"]
        assert replanned
        for record in replanned:
            assert record["metrics"]["first_pass_s"] > 0

    def test_serial_parallel_pairs_bit_equal(self, rich_run):
        """Cross-backend determinism: every parallel-workers=1 cell
        must produce a trace dict bit-equal to its serial twin."""
        _, records = rich_run
        pairs = 0
        for trial_id, record in records.items():
            if record["trial"]["backend"] != "parallel":
                continue
            twin = records[trial_id.replace("parallel-", "simulator-", 1)]
            assert record["trace"] == twin["trace"], trial_id
            assert record["metrics"] == twin["metrics"], trial_id
            pairs += 1
        assert pairs == 8


class TestWallClockBackends:
    def test_minidb_arms_aggregate_outside_the_gate(self, tmp_path):
        """MiniDB timings are real wall-clock: they land in
        ``data.wall_clock`` (reported, never regression-gated) so the
        tracked ``data.totals`` stay deterministic across machines."""
        config = small_config(backends=("simulator", "minidb"),
                              workloads=("io1", "demo"),
                              codecs=("none",))
        run = run_matrix(config, str(tmp_path / "run"),
                         date="2026-01-01")
        assert run.complete and run.ok == run.total == 2
        payload = load_bench(run)
        assert validate_bench_file(payload) == []
        assert list(payload["data"]["totals"]) == ["simulator+none+fb-off"]
        assert list(payload["data"]["wall_clock"]) == \
            ["minidb+none+fb-off"]
        assert payload["data"]["wall_clock"]["minidb+none+fb-off"][
            "demo@0.5"] > 0


class TestFailureIsolation:
    def test_injected_failure_never_kills_the_matrix(self, tmp_path):
        run = run_matrix(small_config(), str(tmp_path / "run"),
                         date="2026-01-01", fail_matching=("zlib",))
        assert run.complete
        assert run.ok == 2 and run.failed == 2
        payload = load_bench(run)
        assert validate_bench_file(payload) == []
        assert len(payload["data"]["failed"]) == 2
        assert all("zlib" in trial_id
                   for trial_id in payload["data"]["failed"])
        report = pathlib.Path(run.report_path).read_text(encoding="utf-8")
        assert "## Failed cells" in report
        assert "injected failure" in report

    def test_crash_in_trial_body_marks_cell_failed(self, tmp_path,
                                                   monkeypatch):
        def boom(spec, config, cancel=None):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(orchestrator, "_trial_body", boom)
        run = run_matrix(small_config(), str(tmp_path / "run"),
                         date="2026-01-01")
        assert run.complete and run.failed == run.total
        payload = load_bench(run)
        entry = next(iter(payload["data"]["trials"].values()))
        assert "synthetic crash" in entry["error"]

    def test_hung_trial_trips_the_timeout(self, tmp_path, monkeypatch):
        def hang(spec, config, cancel=None):
            time.sleep(2.0)

        monkeypatch.setattr(orchestrator, "_trial_body", hang)
        config = small_config(backends=("simulator",),
                              codecs=("none",), trial_timeout_s=0.1)
        run = run_matrix(config, str(tmp_path / "run"),
                         date="2026-01-01")
        assert run.complete and run.timeout == run.total == 1
        payload = load_bench(run)
        entry = next(iter(payload["data"]["trials"].values()))
        assert entry["status"] == "timeout"
        assert "exceeded" in entry["error"]

    def test_timed_out_trial_stops_emitting(self, monkeypatch):
        """The cooperative cancel reaches a timed-out body: it stops at
        the next node boundary instead of running to completion in the
        abandoned thread (the pre-fix behavior kept emitting per-node
        records for the rest of the matrix's lifetime)."""
        emitted: list[int] = []
        unwound = threading.Event()

        def slow_trial(cancel):
            for node in range(1000):
                if cancel.is_set():  # what ExecutionBackend.run does
                    unwound.set()
                    raise RunCancelledError("cancelled", node_id=str(node))
                emitted.append(node)
                time.sleep(0.01)

        monkeypatch.setattr(orchestrator, "_CANCEL_GRACE_S", 2.0)
        with pytest.raises(orchestrator.TrialTimeout):
            orchestrator._run_with_timeout(slow_trial, timeout=0.15)
        assert unwound.wait(2.0), "body never observed the cancel event"
        count = len(emitted)
        time.sleep(0.2)  # the pre-fix thread would still be appending
        assert len(emitted) == count

    def test_cancel_event_stops_a_real_backend_run(self):
        """End-to-end: a Controller built with a pre-set cancel event
        raises RunCancelledError before executing any node, leaving the
        trial's trace unemitted — the path _run_with_timeout drives."""
        from repro.engine.controller import Controller
        from repro.workloads.five_workloads import build_workload

        cancel = threading.Event()
        cancel.set()
        graph = build_workload("io1", scale_gb=1.0)
        controller = Controller(cancel=cancel)
        with pytest.raises(RunCancelledError):
            controller.refresh(graph, graph.total_size(), method="sc")


# ----------------------------------------------------------------------
# resumability
# ----------------------------------------------------------------------
class TestResume:
    def test_interrupted_resume_matches_uninterrupted_run(self, tmp_path):
        """Stop after 2 of 4 cells, resume, and get a byte-identical
        BENCH snapshot: completed cells are never re-executed and the
        aggregation carries no wall-clock noise."""
        clean = run_matrix(small_config(), str(tmp_path / "clean"),
                           date="2026-01-01")
        assert clean.complete

        interrupted = run_matrix(small_config(), str(tmp_path / "resumed"),
                                 date="2026-01-01", stop_after=2)
        assert not interrupted.complete
        assert interrupted.bench_path is None
        assert len(interrupted.executed) == 2

        resumed = run_matrix(small_config(), str(tmp_path / "resumed"),
                             date="2026-01-01", resume=True)
        assert resumed.complete
        assert sorted(resumed.skipped) == sorted(interrupted.executed)
        assert not set(resumed.executed) & set(interrupted.executed)
        assert bench_bytes(tmp_path / "clean") == \
            bench_bytes(tmp_path / "resumed")

    def test_resume_executes_nothing_after_completion(self, tmp_path,
                                                      monkeypatch):
        run = run_matrix(small_config(), str(tmp_path / "run"),
                         date="2026-01-01")
        assert run.complete

        def untouchable(spec, config, cancel=None):
            raise AssertionError("a completed cell was re-executed")

        monkeypatch.setattr(orchestrator, "_trial_body", untouchable)
        again = run_matrix(small_config(), str(tmp_path / "run"),
                           date="2026-01-01", resume=True)
        assert again.complete and again.ok == run.total
        assert again.executed == []
        assert len(again.skipped) == run.total

    def test_retry_failed_converges_to_the_clean_snapshot(self, tmp_path):
        clean = run_matrix(small_config(), str(tmp_path / "clean"),
                           date="2026-01-01")
        assert clean.complete

        broken = run_matrix(small_config(), str(tmp_path / "retry"),
                            date="2026-01-01", fail_matching=("zlib",))
        assert broken.complete and broken.failed == 2

        # plain resume keeps terminal failed cells as-is
        kept = run_matrix(small_config(), str(tmp_path / "retry"),
                          date="2026-01-01", resume=True)
        assert kept.executed == [] and kept.failed == 2

        fixed = run_matrix(small_config(), str(tmp_path / "retry"),
                           date="2026-01-01", resume=True,
                           retry_failed=True)
        assert fixed.complete and fixed.failed == 0
        assert len(fixed.executed) == 2  # only the failed cells re-ran
        assert bench_bytes(tmp_path / "clean") == \
            bench_bytes(tmp_path / "retry")

    def test_run_dir_guards(self, tmp_path):
        run_dir = str(tmp_path / "run")
        run_matrix(small_config(), run_dir, date="2026-01-01",
                   stop_after=1)
        with pytest.raises(ValidationError, match="resume"):
            run_matrix(small_config(), run_dir, date="2026-01-01")
        with pytest.raises(ValidationError, match="different matrix"):
            run_matrix(small_config(name="other"), run_dir,
                       date="2026-01-01", resume=True)

    def test_torn_trial_file_is_re_executed(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_matrix(small_config(), str(run_dir),
                           date="2026-01-01")
        victim = sorted((run_dir / "trials").glob("*.json"))[0]
        victim.write_text("{torn", encoding="utf-8")
        again = run_matrix(small_config(), str(run_dir),
                           date="2026-01-01", resume=True)
        assert again.complete and again.ok == first.total
        assert len(again.executed) == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestMatrixCli:
    def write_tiny(self, tmp_path) -> str:
        path = tmp_path / "tiny.toml"
        path.write_text(TINY_TOML, encoding="utf-8")
        return str(path)

    def test_runs_and_reports(self, tmp_path, capsys):
        code = main(["bench", "matrix", self.write_tiny(tmp_path),
                     "--run-dir", str(tmp_path / "run"),
                     "--date", "2026-01-01", "--report"])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "1 ok" in captured.out
        assert "snapshot:" in captured.out
        assert "# one-cell matrix" in captured.out
        assert (tmp_path / "run" / "BENCH_2026-01-01.json").exists()

    def test_config_required(self, capsys):
        assert main(["bench", "matrix"]) == 2
        assert "config file is required" in capsys.readouterr().err

    def test_run_dir_and_resume_conflict(self, tmp_path, capsys):
        code = main(["bench", "matrix", self.write_tiny(tmp_path),
                     "--run-dir", "a", "--resume", "b"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_invalid_config_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text(TINY_TOML.replace("simulator", "warpdrive"),
                        encoding="utf-8")
        assert main(["bench", "matrix", str(path)]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_config_rejected_for_named_experiments(self, tmp_path,
                                                   capsys):
        code = main(["bench", "fig2", self.write_tiny(tmp_path)])
        assert code == 2
        assert "bench matrix" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the shared artifact-emission helper
# ----------------------------------------------------------------------
def fake_result() -> SimpleNamespace:
    return SimpleNamespace(
        experiment_id="helper", title="helper test",
        headers=["arm", "s"], rows=[["a", 1.0]],
        data={"totals": {"a": {"p": 1.0}}})


class TestResultPayload:
    def test_payload_passes_the_bench_schema(self):
        payload = result_payload(fake_result())
        assert validate_bench_file(payload, name="helper") == []
        assert payload["experiment"] == "helper"

    def test_extra_keys_ride_along(self):
        payload = result_payload(fake_result(), ratios={"zlib": 2.0})
        assert payload["ratios"] == {"zlib": 2.0}

    def test_shadowing_extra_keys_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            result_payload(fake_result(), data={})

    def test_emit_to_explicit_path(self, tmp_path):
        path = str(tmp_path / "out.json")
        assert emit_result_json(fake_result(), path=path) == path
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["title"] == "helper test"

    def test_emit_via_env_var(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.json")
        monkeypatch.setenv("HELPER_BENCH_JSON", path)
        assert emit_result_json(fake_result(),
                                env_var="HELPER_BENCH_JSON") == path
        monkeypatch.delenv("HELPER_BENCH_JSON")
        assert emit_result_json(fake_result(),
                                env_var="HELPER_BENCH_JSON") is None

    def test_emit_requires_a_target(self):
        with pytest.raises(ValueError, match="path or env_var"):
            emit_result_json(fake_result())
