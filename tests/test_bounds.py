"""Validity tests for the fractional MKP bounds."""

import random

from hypothesis import given, settings, strategies as st

from repro.solver.bounds import (
    fractional_bound_per_row,
    fractional_knapsack_bound,
)
from repro.solver.brute import solve_mkp_brute_force
from repro.solver.mkp import MkpInstance


def test_single_row_bound_matches_fractional_optimum():
    profits = [60.0, 100.0, 120.0]
    row = [10.0, 20.0, 30.0]
    # capacity 50: items 1+2 fully, 2/3 of item 0? Dantzig: take by ratio
    # ratios: 6, 5, 4 -> item0 full (10), item1 full (20), item2 20/30
    bound = fractional_knapsack_bound(profits, row, 50.0, [0, 1, 2])
    assert abs(bound - (60 + 100 + 120 * (20 / 30))) < 1e-9


def test_zero_weight_items_counted_for_free():
    profits = [5.0, 7.0]
    row = [0.0, 3.0]
    bound = fractional_knapsack_bound(profits, row, 0.0, [0, 1])
    assert bound == 5.0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_bound_dominates_optimum(seed):
    """Any valid upper bound must be >= the true optimum."""
    rng = random.Random(seed)
    n = rng.randint(1, 9)
    k = rng.randint(1, 4)
    profits = [rng.uniform(0, 10) for _ in range(n)]
    weights = [
        [rng.choice([0.0, rng.uniform(0.1, 5.0)]) for _ in range(n)]
        for _ in range(k)
    ]
    capacities = [rng.uniform(0.5, 8.0) for _ in range(k)]
    inst = MkpInstance.from_lists(profits, weights, capacities)
    optimum = solve_mkp_brute_force(inst).objective

    order = list(range(n))
    bound = fractional_bound_per_row(profits, weights, capacities, order, 0)
    assert bound >= optimum - 1e-9

    # per-row bounds individually dominate as well
    for row, capacity in zip(weights, capacities):
        row_bound = fractional_knapsack_bound(profits, row, capacity,
                                              order)
        assert row_bound >= optimum - 1e-9
