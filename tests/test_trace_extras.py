"""RunTrace.extras round-tripping and cross-backend stability.

The tiered store reports per-tier usage, spill/promote counts, and
stall-vs-spill arbitration outcomes through the generic
``RunTrace.extras`` mapping.  These tests pin the serialization
contract: a trace — extras, ``inf`` tier budgets, admission markers and
all — survives JSON serialize/deserialize bit-identically, and the
extras a run reports are stable between the serial simulator and the
parallel scheduler at ``workers=1``.
"""

import math

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import NodeTrace, RunTrace
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)


def _tiered_run(seed=0, backend="simulator", workers=1, ram_fraction=0.3,
                codec="none", prefetch=False):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=24, height_width_ratio=0.5),
        seed=seed)
    budget = 0.25 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    options = SimulatorOptions(spill=SpillConfig(
        tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
        codec=codec, prefetch=prefetch))
    return Controller(options=options).refresh(
        graph, ram_fraction * peak, plan=plan, method="sc",
        backend=backend, workers=workers)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_tiered_trace_roundtrips_bit_identically(self, seed):
        trace = _tiered_run(seed)
        assert trace.extras["tiered_store"]["spill_count"] > 0
        restored = RunTrace.from_json(trace.to_json())
        assert restored == trace  # dataclass equality: every field
        assert restored.extras == trace.extras

    def test_inf_tier_budget_survives(self):
        trace = _tiered_run()
        tiers = trace.extras["tiered_store"]["tiers"]
        assert any(math.isinf(t["budget"]) for t in tiers)
        restored = RunTrace.from_json(trace.to_json())
        restored_tiers = restored.extras["tiered_store"]["tiers"]
        assert any(math.isinf(t["budget"]) for t in restored_tiers)

    def test_arbitration_counters_survive(self):
        from repro.core.plan import Plan
        from repro.graph.dag import DependencyGraph

        graph = DependencyGraph()
        for node_id in ("a", "b"):
            graph.add_node(node_id, size=1.9, score=1.9,
                           compute_time=0.1)
        plan = Plan(order=("a", "b"), flagged=frozenset({"a", "b"}))
        options = SimulatorOptions(spill=SpillConfig(
            tiers=(TierSpec("disk"),)))
        trace = Controller(options=options).refresh(
            graph, 2.0, plan=plan, method="sc")
        assert trace.extras["tiered_store"]["arbitration"][
            "stall_wins"] == 1
        restored = RunTrace.from_json(trace.to_json())
        assert restored.extras == trace.extras
        assert restored.stall_avoided_time == trace.stall_avoided_time
        assert [n.admission for n in restored.nodes] == \
            [n.admission for n in trace.nodes]

    def test_codec_and_prefetch_extras_roundtrip(self):
        """The compressed-spill accounting — codec names, stored vs
        logical volumes, per-tier ratios, prefetch outcomes — survives
        the JSON round trip bit-identically."""
        trace = _tiered_run(codec="zlib", prefetch=True)
        report = trace.extras["tiered_store"]
        assert report["codec"] == "zlib"
        assert report["spill_count"] > 0
        assert 0.0 < report["spill_stored_gb"] < report["spill_bytes_gb"]
        assert report["prefetch"]["enabled"] is True
        assert {"count", "bytes_gb", "hidden_seconds", "misses"} <= \
            set(report["prefetch"])
        assert all({"codec", "codec_ratio", "logical"} <= set(tier)
                   for tier in report["tiers"])
        restored = RunTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.extras["tiered_store"]["prefetch"] == \
            report["prefetch"]
        assert restored.extras["tiered_store"]["spill_stored_gb"] == \
            report["spill_stored_gb"]

    def test_codec_none_reports_inert_codec_extras(self):
        """With the knobs off, the new extras exist but are inert —
        stored equals logical and nothing was prefetched."""
        trace = _tiered_run()
        report = trace.extras["tiered_store"]
        assert report["codec"] == "none"
        assert report["spill_stored_gb"] == report["spill_bytes_gb"]
        assert report["prefetch"] == {
            "enabled": False, "count": 0, "bytes_gb": 0.0,
            "hidden_seconds": 0.0, "misses": 0}

    def test_untiered_trace_roundtrips(self):
        graph = WorkloadGenerator().generate(
            GeneratedWorkloadConfig(n_nodes=12), seed=2)
        budget = 0.5 * graph.total_size()
        trace = Controller().refresh(graph, budget, method="sc")
        assert trace.extras == {}
        restored = RunTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.stall_avoided_time == 0.0

    def test_node_trace_roundtrip(self):
        node = NodeTrace(node_id="v1", start=1.0, end=2.5, stall=0.25,
                         spill_write=0.1, promote_read=0.05,
                         flagged=True, admission="stall")
        assert NodeTrace.from_dict(node.to_dict()) == node


class TestCrossBackendStability:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_extras_identical_serial_vs_workers1(self, seed):
        serial = _tiered_run(seed, backend="simulator")
        parallel = _tiered_run(seed, backend="parallel", workers=1)
        assert serial.extras == parallel.extras
        # and the serialized forms agree byte for byte
        assert serial.to_json() == parallel.to_json()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_extras_identical_with_compression_on(self, seed):
        serial = _tiered_run(seed, backend="simulator",
                             codec="zlib", prefetch=True)
        parallel = _tiered_run(seed, backend="parallel", workers=1,
                               codec="zlib", prefetch=True)
        assert serial.extras == parallel.extras
        assert serial.to_json() == parallel.to_json()
