"""Tests for the unified execution layer: registry dispatch, the shared
MemoryLedger, and the memory-bounded parallel scheduler."""

import random
import threading

import pytest

from repro.core.optimizer import optimize
from repro.core.plan import Plan
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.memory_catalog import MemoryCatalog
from repro.errors import ValidationError
from repro.exec import MemoryLedger, backend_names, create_backend
from repro.exec.parallel import run_threaded
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)
from tests.conftest import make_random_problem


def _generated_case(seed, n_nodes=24, ratio=0.5, budget_fraction=0.25):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=ratio),
        seed=seed)
    budget = budget_fraction * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    return graph, plan, budget


class TestRegistryDispatch:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown execution"):
            create_backend("presto")

    def test_controller_rejects_unknown_backend(self, diamond_graph):
        with pytest.raises(ValidationError, match="unknown execution"):
            Controller().refresh(diamond_graph, 10.0, backend="presto")

    def test_all_builtin_backends_listed(self):
        names = backend_names()
        for name in ("simulator", "lru", "parallel", "minidb"):
            assert name in names

    def test_lru_method_routes_to_lru_backend(self):
        problem = make_random_problem(9, n_nodes=10)
        trace = Controller().refresh(problem.graph, problem.memory_budget,
                                     method="lru")
        assert trace.method == "lru"

    def test_lru_rejects_plan(self, diamond_graph):
        with pytest.raises(ValidationError, match="does not take a plan"):
            Controller().refresh(diamond_graph, 1.0, method="lru",
                                 plan=Plan.unoptimized(["a", "b", "c", "d"]))

    def test_lru_method_on_other_backend_rejected(self, diamond_graph):
        with pytest.raises(ValidationError, match="'lru' backend"):
            Controller().refresh(diamond_graph, 1.0, method="lru",
                                 backend="parallel")

    def test_optimizing_method_on_plan_free_backend_rejected(self,
                                                             diamond_graph):
        """backend='lru' must not silently drop the optimizer and
        attribute baseline numbers to an S/C method."""
        with pytest.raises(ValidationError, match="plan-free"):
            Controller().refresh(diamond_graph, 10.0, method="sc",
                                 backend="lru")

    def test_simulator_backend_requires_plan_object_or_method(self):
        problem = make_random_problem(3, n_nodes=8)
        backend = create_backend("simulator")
        with pytest.raises(ValidationError, match="requires a plan"):
            backend.run(problem.graph, None, problem.memory_budget)

    def test_memory_catalog_is_a_ledger(self):
        assert isinstance(MemoryCatalog(budget=1.0), MemoryLedger)


class TestParallelScheduler:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5])
    def test_workers1_trace_equals_serial(self, seed):
        graph, plan, budget = _generated_case(seed)
        controller = Controller()
        serial = controller.refresh(graph, budget, plan=plan, method="sc")
        par = controller.refresh(graph, budget, plan=plan, method="sc",
                                 backend="parallel", workers=1)
        assert [n.node_id for n in par.nodes] == \
            [n.node_id for n in serial.nodes]
        assert par.end_to_end_time == pytest.approx(serial.end_to_end_time)
        assert par.peak_catalog_usage == \
            pytest.approx(serial.peak_catalog_usage)
        for s, p in zip(serial.nodes, par.nodes):
            for attr in ("start", "end", "read_disk", "read_memory",
                         "compute", "write", "create_memory", "stall"):
                assert getattr(p, attr) == pytest.approx(getattr(s, attr)), \
                    (s.node_id, attr)

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_more_workers_never_slower_and_budget_safe(self, seed):
        graph, plan, budget = _generated_case(seed, ratio=0.25)
        controller = Controller()
        times = []
        for workers in (1, 2, 4):
            trace = controller.refresh(graph, budget, plan=plan,
                                       method="sc", backend="parallel",
                                       workers=workers)
            assert trace.peak_catalog_usage <= budget + 1e-9
            assert len(trace.nodes) == graph.n
            times.append(trace.end_to_end_time)
        assert times[2] <= times[0] + 1e-9
        assert times[2] < times[0]  # wide DAGs must actually speed up

    def test_deterministic_given_seed(self):
        graph, plan, budget = _generated_case(4, ratio=0.25)
        controller = Controller()
        runs = [controller.refresh(graph, budget, plan=plan, method="sc",
                                   backend="parallel", workers=4, seed=11)
                for _ in range(2)]
        assert runs[0].end_to_end_time == runs[1].end_to_end_time
        assert [n.node_id for n in runs[0].nodes] == \
            [n.node_id for n in runs[1].nodes]

    def test_random_tie_break_reproducible(self):
        graph, plan, budget = _generated_case(6, ratio=0.25)
        backend = create_backend("parallel", workers=4, seed=3,
                                 tie_break="random")
        a = backend.run(graph, plan, budget, method="sc")
        backend2 = create_backend("parallel", workers=4, seed=3,
                                  tie_break="random")
        b = backend2.run(graph, plan, budget, method="sc")
        assert a.end_to_end_time == b.end_to_end_time
        assert a.peak_catalog_usage <= budget + 1e-9

    def test_tiny_budget_spills_instead_of_deadlocking(self):
        graph, plan, _ = _generated_case(2)
        # a budget smaller than any node forces the spill fallback
        trace = Controller().refresh(graph, 1e-9, plan=plan, method="sc",
                                     backend="parallel", workers=4)
        assert len(trace.nodes) == graph.n
        assert trace.peak_catalog_usage <= 1e-9


class TestThreadedExecutor:
    def test_all_nodes_run_and_budget_holds(self):
        graph, plan, budget = _generated_case(1, n_nodes=16)
        trace = run_threaded(graph, plan, budget, workers=4,
                             time_scale=1e-5)
        assert len(trace.nodes) == graph.n
        assert trace.peak_catalog_usage <= budget + 1e-9
        assert trace.end_to_end_time > 0

    def test_dependencies_respected(self):
        graph, plan, budget = _generated_case(3, n_nodes=16)
        trace = run_threaded(graph, plan, budget, workers=4,
                             time_scale=1e-5)
        started = {n.node_id: n.start for n in trace.nodes}
        ended = {n.node_id: n.end for n in trace.nodes}
        for producer, consumer in graph.edges():
            assert started[consumer] >= ended[producer] - 1e-6


class TestLedgerConcurrentAdmission:
    def test_budget_never_exceeded_under_concurrent_admission(self):
        """Property-style hammering: N threads admit/release random-sized
        entries; committed usage must never exceed the budget."""
        budget = 100.0
        ledger = MemoryLedger(budget=budget)
        violations = []
        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                usage = ledger.usage
                if usage > budget + 1e-9:
                    violations.append(usage)

        def hammer(worker_id):
            rng = random.Random(worker_id)
            for i in range(300):
                name = f"t{worker_id}-{i}"
                size = rng.uniform(1.0, 40.0)
                if ledger.try_insert(name, size, n_consumers=1,
                                     materialization_pending=True):
                    ledger.materialized(name)
                    ledger.consumer_done(name)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        watcher = threading.Thread(target=sampler)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        assert not violations
        assert ledger.peak_usage <= budget + 1e-9
        assert ledger.usage == pytest.approx(0.0)

    def test_reservations_block_admission_but_not_peak(self):
        ledger = MemoryLedger(budget=10.0)
        assert ledger.reserve("a", 6.0)
        assert not ledger.reserve("b", 6.0)  # only 4 admissible
        assert ledger.peak_usage == 0.0      # nothing committed yet
        ledger.commit_reservation("a", n_consumers=0,
                                  materialization_pending=True)
        assert ledger.peak_usage == pytest.approx(6.0)
        assert "a" in ledger
        assert ledger.materialized("a")  # 0 consumers + drained: released
        assert "a" not in ledger

    def test_cancel_reservation_frees_space(self):
        ledger = MemoryLedger(budget=10.0)
        assert ledger.reserve("a", 8.0)
        ledger.cancel_reservation("a")
        assert ledger.reserve("b", 8.0)
