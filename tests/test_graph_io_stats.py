"""Tests for graph serialization and statistics."""

import pytest

from repro.errors import GraphError
from repro.graph.dag import DependencyGraph
from repro.graph.io import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_dot,
    graph_to_json,
    load_graph,
    save_graph,
)
from repro.graph.stats import dag_stats


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, diamond_graph):
        diamond_graph.node("a").op = "SCAN"
        diamond_graph.node("b").sql = "SELECT 1"
        diamond_graph.node("c").compute_time = 2.5
        diamond_graph.node("d").meta["base_input_gb"] = 1.25

        restored = graph_from_json(graph_to_json(diamond_graph))
        assert restored.nodes() == diamond_graph.nodes()
        assert restored.edges() == diamond_graph.edges()
        assert restored.node("a").op == "SCAN"
        assert restored.node("b").sql == "SELECT 1"
        assert restored.node("c").compute_time == 2.5
        assert restored.node("d").meta["base_input_gb"] == 1.25

    def test_version_checked(self):
        with pytest.raises(GraphError, match="version"):
            graph_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_file_round_trip(self, tmp_path, diamond_graph):
        path = str(tmp_path / "graph.json")
        save_graph(diamond_graph, path)
        restored = load_graph(path)
        assert restored.edges() == diamond_graph.edges()

    def test_cyclic_payload_rejected(self):
        payload = graph_to_dict(
            DependencyGraph.from_edges([("a", "b")]))
        payload["edges"].append(["b", "a"])
        with pytest.raises(Exception):
            graph_from_dict(payload)


class TestDot:
    def test_flagged_nodes_highlighted(self, diamond_graph):
        dot = graph_to_dot(diamond_graph, flagged={"b"})
        assert '"a" -> "b"' in dot
        assert "lightblue" in dot
        assert dot.count("fillcolor") == 1


class TestStats:
    def test_diamond_stats(self, diamond_graph):
        stats = dag_stats(diamond_graph)
        assert stats.n_nodes == 4
        assert stats.n_edges == 4
        assert stats.height == 3
        assert stats.width == 2
        assert stats.n_sources == 1
        assert stats.n_sinks == 1
        assert stats.max_outdegree == 2
        assert stats.total_size == pytest.approx(10.0)

    def test_chain_stats(self, chain_graph):
        stats = dag_stats(chain_graph)
        assert stats.height == 4
        assert stats.width == 1
        assert stats.height_width_ratio == 4.0
        assert stats.stage_stdev == 0.0

    def test_as_dict_round_trip(self, chain_graph):
        payload = dag_stats(chain_graph).as_dict()
        assert payload["n_nodes"] == 4
        assert payload["height"] == 4
