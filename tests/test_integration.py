"""End-to-end integration: the full S/C pipeline on both substrates.

1. MiniDB path — generate TPC-DS-like data, define MVs in SQL, profile a
   run to collect metadata, optimize with S/C, execute the plan with real
   background materialization, and verify correctness + budget.
2. Simulator path — the five paper workloads through every optimizer
   method, verifying the paper's qualitative ordering.
"""

import numpy as np
import pytest

from repro.core.optimizer import optimize
from repro.core.plan import Plan
from repro.core.problem import ScProblem
from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
from repro.db.runner import run_workload
from repro.engine.controller import Controller
from repro.workloads.five_workloads import build_workload
from repro.workloads.tpcds import load_tpcds


@pytest.fixture(scope="module")
def tpcds_workload(tmp_path_factory):
    db = MiniDB(str(tmp_path_factory.mktemp("warehouse")))
    load_tpcds(db, scale_gb=0.01, seed=0)
    definitions = [
        MvDefinition(
            "mv_store_enriched",
            "SELECT ss_item_sk, ss_quantity, ss_sales_price, "
            "ss_net_profit, i_category_id, i_brand_id, d_year "
            "FROM store_sales "
            "JOIN item ON ss_item_sk = i_item_sk "
            "JOIN date_dim ON ss_sold_date_sk = d_date_sk"),
        MvDefinition(
            "mv_category_sales",
            "SELECT i_category_id, d_year, "
            "SUM(ss_sales_price * ss_quantity) AS revenue, "
            "SUM(ss_net_profit) AS profit "
            "FROM mv_store_enriched "
            "GROUP BY i_category_id, d_year"),
        MvDefinition(
            "mv_brand_sales",
            "SELECT i_brand_id, SUM(ss_quantity) AS volume "
            "FROM mv_store_enriched GROUP BY i_brand_id"),
        MvDefinition(
            "mv_profit_report",
            "SELECT i_category_id, profit FROM mv_category_sales "
            "WHERE profit > 0 ORDER BY profit DESC"),
        MvDefinition(
            "mv_web_summary",
            "SELECT ws_item_sk, SUM(ws_sales_price) AS web_revenue "
            "FROM web_sales GROUP BY ws_item_sk"),
        MvDefinition(
            "mv_cross_channel",
            "SELECT i_brand_id, volume, web_revenue "
            "FROM mv_brand_sales "
            "JOIN mv_store_enriched ON i_brand_id = i_brand_id "
            "JOIN mv_web_summary ON ss_item_sk = ws_item_sk "
            "LIMIT 1000"),
    ]
    return SqlWorkload(db=db, definitions=definitions)


class TestMiniDbPipeline:
    def test_full_pipeline(self, tpcds_workload):
        # 1. profile: observe sizes/timings (the paper's past-runs metadata)
        graph = tpcds_workload.profile()
        assert graph.n == 6
        assert all(graph.size_of(v) > 0 for v in graph.nodes())

        # 2. optimize with S/C
        budget = 1.5 * max(graph.sizes().values())
        problem = ScProblem(graph=graph, memory_budget=budget)
        result = optimize(problem, method="sc")
        assert result.plan.flagged  # something worth keeping in memory

        # 3. execute the plan for real
        trace = run_workload(tpcds_workload, result.plan, budget,
                             method="sc")
        assert trace.peak_catalog_usage <= budget + 1e-9
        db = tpcds_workload.db
        for definition in tpcds_workload.definitions:
            assert db.catalog.persisted(definition.name)

        # 4. results identical to an unoptimized run
        reference = {d.name: db.table(d.name)
                     for d in tpcds_workload.definitions}
        for d in tpcds_workload.definitions:
            db.drop(d.name)
        run_workload(tpcds_workload, Plan.unoptimized(result.plan.order),
                     0.0, method="none")
        for d in tpcds_workload.definitions:
            assert db.table(d.name).equals(reference[d.name]), d.name


class TestSimulatorPipeline:
    def test_paper_method_ordering_holds(self):
        graph = build_workload("io1", scale_gb=100.0)
        budget = 1.6
        controller = Controller()
        times = {
            method: controller.refresh(graph, budget, method=method,
                                       seed=3).end_to_end_time
            for method in ("none", "lru", "greedy", "ratio", "sc")
        }
        assert times["sc"] < times["none"]
        assert times["sc"] <= min(times["greedy"], times["ratio"],
                                  times["lru"]) * 1.01
        assert times["lru"] < times["none"]

    def test_partitioned_beats_regular(self):
        controller = Controller()
        speedups = {}
        for partitioned in (False, True):
            graph = build_workload("io2", scale_gb=100.0,
                                   partitioned=partitioned)
            budget = 0.8 if partitioned else 1.6
            none_t = controller.refresh(graph, budget,
                                        method="none").end_to_end_time
            sc_t = controller.refresh(graph, budget,
                                      method="sc").end_to_end_time
            speedups[partitioned] = none_t / sc_t
        assert speedups[True] > speedups[False]
