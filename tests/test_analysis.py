"""repro-lint engine tests: per-rule fixtures, suppressions, the
baseline ratchet, CLI exit codes, and the repo's own cleanliness.

Most tests drive the in-process API (`repro.analysis.analyze`) against
tiny fixture trees under tmp_path; the CLI contract (exit codes 0
clean / 1 violations / 2 config error) is exercised via subprocess,
as is the acceptance check that `python -m repro.analysis src/repro`
runs clean against the committed baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze
from repro.analysis import baseline as baseline_mod
from repro.analysis.config import LintConfig, LintConfigError, path_matches
from repro.analysis.engine import HYGIENE_CODE

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Config for fixture trees: schema checking off unless a test opts in.
BARE = LintConfig(schema_module=None)


def lint(tmp_path: Path, source: str, config: LintConfig = BARE,
         filename: str = "mod.py"):
    (tmp_path / "src").mkdir(exist_ok=True)
    (tmp_path / "src" / filename).write_text(source, encoding="utf-8")
    return analyze(tmp_path, ("src",), config)


def codes_and_lines(result):
    return [(v.code, v.line) for v in result.active]


# -- REP001 wall clock -------------------------------------------------

def test_rep001_flags_time_calls_with_line(tmp_path):
    result = lint(tmp_path, (
        "import time\n"
        "from time import perf_counter as pc\n"
        "a = time.perf_counter()\n"
        "b = pc()\n"
        "c = time.monotonic()\n"))
    assert codes_and_lines(result) == [
        ("REP001", 3), ("REP001", 4), ("REP001", 5)]


def test_rep001_ignores_non_clock_time_functions(tmp_path):
    result = lint(tmp_path, "import time\ntime.sleep(0)\n")
    assert result.active == []


def test_rep001_allowlisted_file_is_exempt(tmp_path):
    config = LintConfig(schema_module=None,
                        wallclock_allow=("minidb.py", "bench/"))
    result = lint(tmp_path, "import time\ntime.time()\n",
                  config, filename="minidb.py")
    assert result.active == []


# -- REP002 unseeded RNG ----------------------------------------------

def test_rep002_flags_global_rng_calls(tmp_path):
    result = lint(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "from random import shuffle\n"
        "x = random.random()\n"
        "np.random.rand(3)\n"
        "shuffle([1, 2])\n"))
    assert codes_and_lines(result) == [
        ("REP002", 4), ("REP002", 5), ("REP002", 6)]


def test_rep002_allows_seeded_constructors(tmp_path):
    result = lint(tmp_path, (
        "import random\n"
        "import numpy as np\n"
        "rng = random.Random(7)\n"
        "gen = np.random.default_rng(7)\n"
        "rng.random(); gen.normal()\n"))
    assert result.active == []


# -- REP003 lock discipline -------------------------------------------

LEDGER_HEADER = (
    "import threading\n"
    "class MemoryLedger:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.RLock()\n"
    "        self._usage = 0.0\n")


def test_rep003_flags_unlocked_write(tmp_path):
    result = lint(tmp_path, LEDGER_HEADER + (
        "    def bump(self):\n"
        "        self._usage += 1\n"))
    assert codes_and_lines(result) == [("REP003", 7)]


def test_rep003_accepts_locked_write_and_exempts_init(tmp_path):
    result = lint(tmp_path, LEDGER_HEADER + (
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._usage += 1\n"))
    assert result.active == []


def test_rep003_contract_helper_checked_at_call_sites(tmp_path):
    source = LEDGER_HEADER + (
        "    def _apply(self, n):  # lint: locked\n"
        "        self._usage += n\n"
        "    def good(self):\n"
        "        with self._lock:\n"
        "            self._apply(1)\n"
        "    def bad(self):\n"
        "        self._apply(2)\n")
    result = lint(tmp_path, source)
    assert codes_and_lines(result) == [("REP003", 12)]
    assert "_apply" in result.active[0].message


def test_rep003_covers_subclasses_by_name(tmp_path):
    result = lint(tmp_path, LEDGER_HEADER + (
        "class TierLedger(MemoryLedger):\n"
        "    def poke(self):\n"
        "        self._usage = 5\n"))
    assert codes_and_lines(result) == [("REP003", 8)]


def test_rep003_mutator_calls_count_as_writes(tmp_path):
    result = lint(tmp_path, LEDGER_HEADER + (
        "    def track(self, x):\n"
        "        self._entries = {}\n"
        "    def poke(self, x):\n"
        "        self._entries.update(x)\n"))
    assert [(v.code, v.line) for v in result.active] == [
        ("REP003", 7), ("REP003", 9)]


# -- REP004 bus guard --------------------------------------------------

def test_rep004_flags_unguarded_emission(tmp_path):
    result = lint(tmp_path, (
        "def run(bus):\n"
        "    bus.instant('x', 'lane', 0.0)\n"))
    assert codes_and_lines(result) == [("REP004", 2)]


def test_rep004_accepts_guards_and_guard_clauses(tmp_path):
    result = lint(tmp_path, (
        "def wrapped(bus):\n"
        "    if bus.enabled:\n"
        "        bus.instant('x', 'lane', 0.0)\n"
        "def clause(self):\n"
        "    if not self.bus.enabled:\n"
        "        return\n"
        "    self.bus.counter('a', 'b', 0.0, 1)\n"))
    assert result.active == []


def test_rep004_else_branch_is_not_guarded(tmp_path):
    result = lint(tmp_path, (
        "def run(bus):\n"
        "    if bus.enabled:\n"
        "        pass\n"
        "    else:\n"
        "        bus.instant('x', 'lane', 0.0)\n"))
    assert codes_and_lines(result) == [("REP004", 5)]


def test_rep004_helper_module_is_exempt(tmp_path):
    config = LintConfig(schema_module=None,
                        bus_helper_files=("events.py",))
    result = lint(tmp_path, "def f(bus):\n    bus.span('a','b',0,1)\n",
                  config, filename="events.py")
    assert result.active == []


# -- REP005 extras schema ---------------------------------------------

SCHEMA_SOURCE = (
    'DECLARED = frozenset({\n'
    '    "spill_count",\n'
    '    "tiers",\n'
    '    "name",\n'
    '})\n')


def schema_config(tmp_path: Path) -> LintConfig:
    (tmp_path / "schema.py").write_text(SCHEMA_SOURCE, encoding="utf-8")
    return LintConfig(
        schema_module="schema.py",
        schema_constants=("DECLARED",),
        schema_producers=("mod.py::tier_report",))


def test_rep005_flags_undeclared_producer_key(tmp_path):
    config = schema_config(tmp_path)
    result = lint(tmp_path, (
        "def tier_report(self):\n"
        "    return {'spill_count': 1, 'spil_count_typo': 2}\n"),
        config)
    assert codes_and_lines(result) == [("REP005", 2)]
    assert "spil_count_typo" in result.active[0].message


def test_rep005_follows_consumer_dataflow(tmp_path):
    config = schema_config(tmp_path)
    # the typo'd nested read is caught; declared keys pass
    result = lint(tmp_path, (
        "def read(trace):\n"
        "    report = trace.extras.get('tiered_store') or {}\n"
        "    ok = report.get('spill_count', 0)\n"
        "    for tier in report['tiers']:\n"
        "        tier['name']\n"
        "        tier['nmae']\n"), config)
    assert codes_and_lines(result) == [("REP005", 6)]


def test_rep005_missing_schema_module_is_config_error(tmp_path):
    config = LintConfig(schema_module="nope.py",
                        schema_constants=("DECLARED",))
    with pytest.raises(LintConfigError):
        lint(tmp_path, "x = 1\n", config)


# -- REP006 error taxonomy --------------------------------------------

def test_rep006_flags_builtin_raise_in_entry_point(tmp_path):
    config = LintConfig(schema_module=None,
                        error_taxonomy_files=("cli.py",))
    result = lint(tmp_path, (
        "from repro.errors import ValidationError\n"
        "class LocalError(ValidationError):\n"
        "    pass\n"
        "def main(argv):\n"
        "    raise ValueError('bad')\n"),
        config, filename="cli.py")
    assert codes_and_lines(result) == [("REP006", 5)]


def test_rep006_allows_taxonomy_and_unresolved_names(tmp_path):
    config = LintConfig(schema_module=None,
                        error_taxonomy_files=("cli.py",))
    result = lint(tmp_path, (
        "from repro.errors import ValidationError\n"
        "class LocalError(ValidationError):\n"
        "    pass\n"
        "def main(argv, exc):\n"
        "    if argv:\n"
        "        raise ValidationError('x')\n"
        "    if exc:\n"
        "        raise exc\n"
        "    raise LocalError('y')\n"),
        config, filename="cli.py")
    assert result.active == []


def test_rep006_only_applies_to_configured_files(tmp_path):
    result = lint(tmp_path, "def f():\n    raise ValueError('x')\n")
    assert result.active == []


# -- suppressions ------------------------------------------------------

def test_suppression_silences_and_inventories(tmp_path):
    result = lint(tmp_path, (
        "import time\n"
        "t = time.time()  # repro-lint: disable=REP001 -- real I/O timer\n"))
    assert result.active == []
    assert [v.code for v in result.suppressed] == ["REP001"]
    assert result.suppression_inventory() == {
        ("REP001", "src/mod.py"): 1}


def test_file_scope_suppression_covers_all_lines(tmp_path):
    result = lint(tmp_path, (
        "# repro-lint: file-disable=REP001 -- whole module times real I/O\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"))
    assert result.active == []
    assert len(result.suppressed) == 2


def test_suppression_without_justification_is_hygiene_error(tmp_path):
    result = lint(tmp_path, (
        "import time\n"
        "t = time.time()  # repro-lint: disable=REP001\n"))
    # the directive is rejected, so the violation stays active too
    codes = [v.code for v in result.active]
    assert HYGIENE_CODE in codes and "REP001" in codes


def test_unknown_code_and_unused_suppression_are_hygiene_errors(tmp_path):
    result = lint(tmp_path, (
        "x = 1  # repro-lint: disable=REP999 -- no such rule\n"
        "y = 2  # repro-lint: disable=REP001 -- nothing to suppress here\n"))
    messages = [v.message for v in result.active]
    assert len(messages) == 2
    assert any("unknown" in m for m in messages)
    assert any("matches no" in m for m in messages)


# -- baseline ratchet --------------------------------------------------

VIOLATING = "import time\na = time.time()\nb = time.monotonic()\n"


def test_baseline_ratchet(tmp_path):
    result = lint(tmp_path, VIOLATING)
    assert len(result.violations) == 2
    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, result)
    baseline = baseline_mod.load(baseline_path)

    # same findings: clean against the baseline
    delta = baseline_mod.compare(result, baseline)
    assert delta.clean and delta.fixed == 0

    # one violation fixed: still clean, improvement reported
    improved = lint(tmp_path, "import time\na = time.time()\n")
    delta = baseline_mod.compare(improved, baseline)
    assert delta.clean and delta.fixed == 1

    # a new violation appears: ratchet fails with exactly the new one
    worse = lint(tmp_path, VIOLATING + "c = time.perf_counter()\n")
    delta = baseline_mod.compare(worse, baseline)
    assert not delta.clean
    assert [(v.code, v.line) for v in delta.new] == [("REP001", 4)]


def test_baseline_audits_new_suppressions(tmp_path):
    clean = lint(tmp_path, "x = 1\n")
    baseline_path = tmp_path / "baseline.json"
    baseline_mod.save(baseline_path, clean)
    suppressing = lint(tmp_path, (
        "import time\n"
        "t = time.time()  # repro-lint: disable=REP001 -- real timer\n"))
    delta = baseline_mod.compare(suppressing,
                                 baseline_mod.load(baseline_path))
    assert not delta.clean
    assert delta.new_suppressions == [("REP001", "src/mod.py", 1, 0)]


def test_malformed_baseline_is_config_error(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{\"version\": 99}", encoding="utf-8")
    with pytest.raises(LintConfigError):
        baseline_mod.load(bad)


# -- config ------------------------------------------------------------

def test_path_matches_suffix_and_directory_patterns():
    assert path_matches("src/repro/exec/minidb.py",
                        ("repro/exec/minidb.py",))
    assert not path_matches("src/repro/exec/minidb.py", ("exec/mini.py",))
    assert path_matches("benchmarks/bench_x.py", ("benchmarks/",))
    assert path_matches("src/benchmarks/bench_x.py", ("benchmarks/",))
    assert not path_matches("src/xbenchmarks/bench_x.py", ("benchmarks/",))


# -- CLI (subprocess) --------------------------------------------------

def _run_cli(cwd: Path, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=120)


PYPROJECT = (
    "[tool.repro-lint]\n"
    "paths = [\"src\"]\n"
    "baseline = \"baseline.json\"\n"
    "schema_module = \"\"\n")


def _mini_repo(tmp_path: Path, source: str) -> Path:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT, encoding="utf-8")
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(source, encoding="utf-8")
    return tmp_path


def test_cli_exit_0_on_clean_tree(tmp_path):
    repo = _mini_repo(tmp_path, "x = 1\n")
    proc = _run_cli(repo)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no violations" in proc.stdout


def test_cli_exit_1_on_violations_and_0_after_update_baseline(tmp_path):
    repo = _mini_repo(tmp_path, "import time\nt = time.time()\n")
    proc = _run_cli(repo)
    assert proc.returncode == 1
    assert "REP001" in proc.stdout
    proc = _run_cli(repo, "--update-baseline")
    assert proc.returncode == 0
    assert json.loads((repo / "baseline.json").read_text())["violations"]
    proc = _run_cli(repo)  # baselined now: clean
    assert proc.returncode == 0


def test_cli_exit_2_on_config_errors(tmp_path):
    repo = _mini_repo(tmp_path, "x = 1\n")
    assert _run_cli(repo, "no/such/dir").returncode == 2
    assert _run_cli(repo, "--explain", "NOPE").returncode == 2
    (repo / "pyproject.toml").write_text(
        "[tool.repro-lint]\nbogus_key = 1\n", encoding="utf-8")
    assert _run_cli(repo).returncode == 2


def test_cli_explain_and_list_rules(tmp_path):
    repo = _mini_repo(tmp_path, "x = 1\n")
    proc = _run_cli(repo, "--explain", "REP003")
    assert proc.returncode == 0
    assert "lint: locked" in proc.stdout
    proc = _run_cli(repo, "--list-rules")
    assert proc.returncode == 0
    for code in ("REP001", "REP002", "REP003", "REP004", "REP005",
                 "REP006", "REP000"):
        assert code in proc.stdout


# -- acceptance: every rule catches a seeded violation ----------------

SCRATCH = '''\
import time
import random
import threading

class MemoryLedger:
    def __init__(self):
        self._lock = threading.RLock()
        self._usage = 0.0

    def bump(self, bus, trace):
        t = time.perf_counter()
        x = random.random()
        self._usage += x
        bus.counter("a", "b", t, x)
        report = trace.extras["tiered_store"]
        return report["definitely_not_a_key"]

def main(argv):
    raise RuntimeError("boom")
'''

#: (code, 1-indexed line in SCRATCH) for each deliberate violation.
EXPECTED = [
    ("REP001", 11),
    ("REP002", 12),
    ("REP003", 13),
    ("REP004", 14),
    ("REP005", 16),
    ("REP006", 19),
]


def test_every_rule_catches_its_seeded_violation(tmp_path):
    config = LintConfig(
        schema_module="schema.py",
        schema_constants=("DECLARED",),
        schema_producers=(),
        error_taxonomy_files=("scratch.py",))
    (tmp_path / "schema.py").write_text(SCHEMA_SOURCE, encoding="utf-8")
    result = lint(tmp_path, SCRATCH, config, filename="scratch.py")
    assert codes_and_lines(result) == EXPECTED


# -- the repo itself ---------------------------------------------------

def test_repo_is_clean_against_committed_baseline():
    """`python -m repro.analysis src/repro` exits 0 at the repo root —
    the acceptance criterion CI's static-analysis job enforces."""
    proc = _run_cli(REPO_ROOT, "src/repro")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no violations" in proc.stdout
