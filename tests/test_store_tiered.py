"""Unit tests for the tiered storage subsystem (repro/store/)."""

import math

import pytest

from repro.errors import BudgetExceededError, CatalogError, ValidationError
from repro.exec.ledger import MemoryLedger
from repro.store import (
    SpillConfig,
    SpillPolicy,
    TierSpec,
    TieredLedger,
    VictimInfo,
    create_policy,
    parse_tier,
    policy_names,
    register_policy,
)


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
class TestTierConfig:
    def test_parse_tier_with_budget(self):
        spec = parse_tier("ssd:8.5")
        assert spec.name == "ssd" and spec.budget == 8.5

    def test_parse_tier_unbounded(self):
        assert parse_tier("disk").budget == math.inf
        assert parse_tier("disk:inf").budget == math.inf
        assert parse_tier("disk:unbounded").budget == math.inf

    def test_parse_tier_bad_budget(self):
        with pytest.raises(ValidationError, match="bad tier budget"):
            parse_tier("ssd:lots")

    def test_bad_tier_name(self):
        with pytest.raises(ValidationError, match="bad tier name"):
            TierSpec(name="")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError, match="must be >= 0"):
            TierSpec(name="ssd", budget=-1.0)

    def test_known_names_resolve_default_profiles(self):
        assert parse_tier("ssd").resolved_profile().disk_read_bandwidth > \
            parse_tier("hdd").resolved_profile().disk_read_bandwidth

    def test_spill_config_rejects_duplicates_and_ram(self):
        with pytest.raises(ValidationError, match="duplicate tier"):
            SpillConfig(tiers=(TierSpec("ssd"), TierSpec("ssd")))
        with pytest.raises(ValidationError, match="'ram'"):
            SpillConfig(tiers=(TierSpec("ram", 4.0),))
        with pytest.raises(ValidationError, match="at least one tier"):
            SpillConfig(tiers=())


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
def _victim(node_id, size=1.0, consumers=1, last_access=0, reload=1.0):
    return VictimInfo(node_id=node_id, size=size, consumers_left=consumers,
                      last_access=last_access, reload_cost=reload)


class TestPolicies:
    def test_builtins_registered(self):
        for name in ("cost", "lru", "largest"):
            assert name in policy_names()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="unknown spill policy"):
            create_policy("magic")

    def test_duplicate_policy_name_rejected(self):
        class Impostor(SpillPolicy):
            name = "lru"

            def key(self, victim):
                return (0,)

        with pytest.raises(ValidationError, match="already registered"):
            register_policy(Impostor)

    def test_cost_policy_prefers_cheap_reload_per_byte(self):
        ranked = create_policy("cost").order([
            _victim("dead", size=5.0, consumers=0),   # nobody reads again
            _victim("hot", size=1.0, consumers=4),
            _victim("warm", size=4.0, consumers=1),
        ])
        assert [v.node_id for v in ranked] == ["dead", "warm", "hot"]

    def test_lru_policy_orders_by_recency(self):
        ranked = create_policy("lru").order([
            _victim("new", last_access=9),
            _victim("old", last_access=1),
        ])
        assert [v.node_id for v in ranked] == ["old", "new"]

    def test_largest_policy_orders_by_size(self):
        ranked = create_policy("largest").order([
            _victim("small", size=1.0),
            _victim("big", size=9.0),
        ])
        assert [v.node_id for v in ranked] == ["big", "small"]

    def test_node_id_breaks_ties_deterministically(self):
        ranked = create_policy("largest").order(
            [_victim("b"), _victim("a"), _victim("c")])
        assert [v.node_id for v in ranked] == ["a", "b", "c"]

    def test_cost_policy_ranks_zero_size_victims_last(self):
        """Regression: a zero-size entry scored 0.0 — the *best*
        victim — although demoting it frees no bytes; it must rank
        after every real victim."""
        ranked = create_policy("cost").order([
            _victim("empty", size=0.0, consumers=0, reload=0.0),
            _victim("busy", size=2.0, consumers=3, reload=5.0),
            _victim("cold", size=4.0, consumers=1, reload=1.0),
        ])
        assert [v.node_id for v in ranked] == ["cold", "busy", "empty"]


# ----------------------------------------------------------------------
# ledger migration primitive
# ----------------------------------------------------------------------
class TestDetachAdopt:
    def test_roundtrip_preserves_protocol_state(self):
        src, dst = MemoryLedger(budget=10.0), MemoryLedger(budget=10.0)
        src.insert("t", 4.0, n_consumers=2, materialization_pending=True)
        src.consumer_done("t")
        dst.adopt("t", *src.detach("t"))
        assert "t" not in src and src.usage == 0.0
        assert dst.usage == 4.0
        assert dst.consumers_left("t") == 1
        assert not dst.consumer_done("t")   # materialization still pending
        assert dst.materialized("t")        # now releasable
        assert dst.usage == 0.0

    def test_adopt_respects_budget(self):
        src, dst = MemoryLedger(budget=10.0), MemoryLedger(budget=2.0)
        src.insert("t", 4.0, n_consumers=1)
        with pytest.raises(BudgetExceededError):
            dst.adopt("t", *src.detach("t"))


# ----------------------------------------------------------------------
# TieredLedger
# ----------------------------------------------------------------------
def _ledger(ram=10.0, ssd=20.0, policy="cost", charge_io=True):
    return TieredLedger(ram, SpillConfig(
        tiers=(TierSpec("ssd", ssd), TierSpec("disk")), policy=policy),
        charge_io=charge_io)


class TestTieredLedger:
    def test_plain_ledger_behavior_when_nothing_spills(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        assert ledger.tier_of("a") == 0
        assert ledger.usage == 6.0 and ledger.peak_usage == 6.0
        with pytest.raises(BudgetExceededError):
            ledger.insert("b", 5.0, n_consumers=1)  # insert stays strict

    def test_spill_insert_demotes_victims(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        tier, charges = ledger.spill_insert("b", 8.0, n_consumers=1)
        assert tier == 0
        assert ledger.tier_of("a") == 1 and ledger.tier_of("b") == 0
        assert ledger.usage == 8.0      # RAM-only accounting
        assert ledger.spill_count == 1
        assert [c.node_id for c in charges] == ["a"]
        assert charges[0].seconds > 0   # charged at the SSD's speed

    def test_oversized_entry_lands_in_lower_tier(self):
        ledger = _ledger()
        tier, charges = ledger.spill_insert("huge", 15.0, n_consumers=1)
        assert tier == 1                # too big for RAM, fits the SSD
        assert ledger.tier_of("huge") == 1
        assert ledger.usage == 0.0
        tier2, _ = ledger.spill_insert("mega", 50.0, n_consumers=0)
        assert tier2 == 2               # too big for the SSD too

    def test_demotion_cascades_through_full_middle_tier(self):
        ledger = _ledger(ram=10.0, ssd=10.0)
        ledger.insert("a", 8.0, n_consumers=1)
        ledger.spill_insert("b", 8.0, n_consumers=1)   # a -> ssd
        assert ledger.tier_of("a") == 1
        ledger.spill_insert("c", 8.0, n_consumers=1)   # b -> ssd, a -> disk
        assert ledger.tier_of("a") == 2
        assert ledger.tier_of("b") == 1
        assert ledger.tier_of("c") == 0

    def test_release_protocol_routes_to_holding_tier(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        ledger.spill_insert("b", 8.0, n_consumers=1)   # a spilled
        assert "a" in ledger
        assert ledger.consumers_left("a") == 1
        assert not ledger.consumer_done("a")   # drain still pending
        assert ledger.materialized("a")        # released from the SSD
        assert "a" not in ledger
        assert ledger.tiers[1].ledger.usage == 0.0

    def test_promote_restores_ram_residency(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=2)
        ledger.spill_insert("b", 8.0, n_consumers=0,
                            materialization_pending=True)
        assert ledger.materialized("b")        # b leaves RAM
        charge = ledger.promote("a")
        assert charge is not None and charge.dst == "ram"
        assert ledger.tier_of("a") == 0
        assert ledger.promote_count == 1
        assert ledger.consumers_left("a") == 2  # state preserved

    def test_promote_refuses_when_ram_is_full(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        ledger.spill_insert("b", 8.0, n_consumers=1)   # a spilled
        assert ledger.promote("a") is None     # 6 GB won't fit beside b
        assert ledger.tier_of("a") == 1

    def test_make_room_never_migrates_zero_size_victims(self):
        """Regression: zero-size entries used to rank as the best cost
        victims, so _make_room demoted them (freeing nothing) before
        reaching real victims."""
        ledger = _ledger()
        ledger.insert("empty", 0.0, n_consumers=1)
        ledger.insert("cold", 6.0, n_consumers=1)
        ok, charges = ledger.try_make_room(8.0)
        assert ok
        assert [c.node_id for c in charges] == ["cold"]  # no churn
        assert ledger.tier_of("empty") == 0

    def test_try_make_room_respects_reservations(self):
        ledger = _ledger()
        assert ledger.reserve("r", 7.0)
        ledger.insert("a", 2.0, n_consumers=1)
        ok, charges = ledger.try_make_room(5.0)
        assert not ok and not charges   # 5 > 10 - 7 admissible, no churn
        ok, charges = ledger.try_make_room(3.0)
        assert ok and [c.node_id for c in charges] == ["a"]

    def test_charge_io_false_moves_bytes_for_free(self):
        ledger = _ledger(charge_io=False)
        ledger.insert("a", 6.0, n_consumers=1)
        _, charges = ledger.spill_insert("b", 8.0, n_consumers=1)
        assert all(c.seconds == 0.0 for c in charges)
        assert ledger.spill_count == 1  # counters still advance

    def test_pick_victim_honors_exclusions(self):
        ledger = _ledger(policy="largest")
        ledger.insert("big", 6.0, n_consumers=1)
        ledger.insert("small", 2.0, n_consumers=1)
        assert ledger.pick_victim() == "big"
        assert ledger.pick_victim(exclude=frozenset({"big"})) == "small"
        assert ledger.pick_victim(
            exclude=frozenset({"big", "small"})) is None

    def test_lru_policy_uses_note_read_recency(self):
        ledger = _ledger(policy="lru")
        ledger.insert("first", 4.0, n_consumers=1)
        ledger.insert("second", 4.0, n_consumers=1)
        ledger.note_read("first")              # first becomes most recent
        ledger.spill_insert("c", 8.0, n_consumers=1)
        assert ledger.tier_of("second") == 1   # LRU victim
        assert ledger.tier_of("first") == 1    # then first had to go too
        assert ledger.tier_of("c") == 0

    def test_duplicate_ids_rejected_across_tiers(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        ledger.spill_insert("b", 8.0, n_consumers=1)   # a now on the SSD
        with pytest.raises(CatalogError, match="already resident"):
            ledger.spill_insert("a", 1.0, n_consumers=1)

    def test_finite_hierarchy_can_reject(self):
        ledger = TieredLedger(2.0, SpillConfig(
            tiers=(TierSpec("ssd", 3.0),)))
        with pytest.raises(BudgetExceededError, match="no storage tier"):
            ledger.spill_insert("huge", 9.0, n_consumers=1)

    def test_tier_report_shape(self):
        ledger = _ledger()
        ledger.insert("a", 6.0, n_consumers=1)
        ledger.spill_insert("b", 8.0, n_consumers=1)
        report = ledger.tier_report()
        assert report["policy"] == "cost"
        assert report["spill_count"] == 1
        names = [tier["name"] for tier in report["tiers"]]
        assert names == ["ram", "ssd", "disk"]
        assert report["tiers"][0]["peak"] <= 10.0
        assert report["tiers"][1]["usage"] == 6.0
        assert report["tiers"][0]["resident"] == 1
