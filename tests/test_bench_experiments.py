"""Smoke tests for the experiment drivers (tiny parameterizations).

The full-size assertions live in ``benchmarks/``; here we verify every
driver runs, returns well-formed rows, and renders.
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["long-name", 123456.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "123,456" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/body aligned

    def test_cell_formats(self):
        from repro.bench.report import format_cell

        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(12.345) == "12.3"
        assert format_cell(10_000.0) == "10,000"
        assert format_cell("x") == "x"


class TestDrivers:
    def test_fig2(self):
        result = experiments.fig2_query_type_breakdown()
        assert len(result.rows) == 10
        assert result.render()

    def test_fig3_tiny(self):
        result = experiments.fig3_io_breakdown(scales_gb=(0.002,))
        assert len(result.rows) == 1
        shares = result.rows[0][1:]
        assert sum(shares) == pytest.approx(100.0)

    def test_table3(self):
        result = experiments.table3_workload_summary()
        assert len(result.rows) == 5

    def test_fig9_small_scale(self):
        result = experiments.fig9_end_to_end(scale_gb=10.0)
        assert len(result.rows) == 10  # 2 datasets x 5 workloads
        for series in result.data["times"].values():
            assert series["sc"] <= series["none"] * 1.0001

    def test_fig10_two_scales(self):
        result = experiments.fig10_scales(scales_gb=(10, 25))
        assert len(result.rows) == 4
        assert all(value > 1.0
                   for value in result.data["speedups"].values())

    def test_fig11_two_points(self):
        result = experiments.fig11_memory_sweep(
            scale_gb=10.0, fractions=(0.008, 0.064))
        speedups = result.data["speedups"]
        assert speedups[0.064]["spare"] >= speedups[0.008]["spare"] - 0.05

    def test_table4_two_points(self):
        result = experiments.table4_latency_breakdown(
            scale_gb=10.0, fractions=(0.008, 0.064))
        assert len(result.rows) == 6  # 2 datasets x 3 metrics

    def test_fig12_small_scale(self):
        result = experiments.fig12_ablation(scale_gb=10.0)
        totals = result.data["totals"]
        for dataset in ("TPC-DS", "TPC-DSp"):
            assert totals[(dataset, "mkp+madfs")] < \
                totals[(dataset, "none")]

    def test_table5_three_clusters(self):
        result = experiments.table5_cluster_scaling(
            scale_gb=10.0, worker_counts=(1, 2, 3))
        totals = result.data["totals"]
        assert totals[1][0] > totals[3][0]

    def test_fig13_tiny(self):
        result = experiments.fig13_optimization_time(
            dag_sizes=(10, 25), n_dags=1)
        assert set(result.data["times"]) == {10, 25}

    def test_fig14_tiny(self):
        result = experiments.fig14_parameter_sweep(n_dags=2)
        assert ("DAG size", "100") in result.data["normalized"]
        assert result.data["normalized"][("DAG size", "100")] == \
            pytest.approx(1.0)
