"""Tests for graph traversal helpers."""

import pytest

from repro.errors import GraphError
from repro.graph.dag import DependencyGraph
from repro.graph.traversal import (
    ancestors,
    critical_path,
    descendants,
    last_consumer_position,
    longest_path_levels,
)


class TestReachability:
    def test_ancestors_descendants(self, diamond_graph):
        assert ancestors(diamond_graph, "d") == {"a", "b", "c"}
        assert ancestors(diamond_graph, "a") == set()
        assert descendants(diamond_graph, "a") == {"b", "c", "d"}
        assert descendants(diamond_graph, "d") == set()

    def test_unknown_node(self, diamond_graph):
        with pytest.raises(GraphError):
            ancestors(diamond_graph, "ghost")


class TestLevels:
    def test_diamond_levels(self, diamond_graph):
        levels = longest_path_levels(diamond_graph)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_longest_path_wins(self):
        # a -> b -> c and a -> c: c sits at level 2, not 1
        graph = DependencyGraph.from_edges(
            [("a", "b"), ("b", "c"), ("a", "c")])
        assert longest_path_levels(graph)["c"] == 2

    def test_cycle_rejected(self):
        graph = DependencyGraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(GraphError):
            longest_path_levels(graph)


class TestCriticalPath:
    def test_weighted_path(self, diamond_graph):
        weights = {"a": 1.0, "b": 5.0, "c": 1.0, "d": 1.0}
        total, path = critical_path(diamond_graph, weights)
        assert total == pytest.approx(7.0)
        assert path == ["a", "b", "d"]

    def test_defaults_to_compute_time(self, diamond_graph):
        for node_id, value in (("a", 1.0), ("b", 1.0), ("c", 4.0),
                               ("d", 1.0)):
            diamond_graph.node(node_id).compute_time = value
        total, path = critical_path(diamond_graph)
        assert total == pytest.approx(6.0)
        assert path == ["a", "c", "d"]


class TestLastConsumerPosition:
    def test_diamond(self, diamond_graph):
        order = ["a", "b", "c", "d"]
        release = last_consumer_position(diamond_graph, order)
        assert release["a"] == 2  # c is a's last consumer
        assert release["b"] == 3
        assert release["c"] == 3
        assert release["d"] == 3  # no consumers: own position

    def test_requires_full_order(self, diamond_graph):
        with pytest.raises(GraphError):
            last_consumer_position(diamond_graph, ["a", "b"])
