"""Compressed spill pipeline: codec config, decode-aware costing,
promote-ahead prefetching, codec-aware planning, and real MiniDB
compression.

The invariant running through everything here: ``codec="none"`` with
prefetch off is *arithmetically identical* to the codec-free pipeline
(PR 3), so arming the knobs is always an explicit opt-in.
"""

import math

import pytest

from repro.core.problem import ScProblem, TierAwareBudget
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.errors import ValidationError
from repro.exec.base import create_backend
from repro.metadata.costmodel import DeviceProfile
from repro.store import (
    NONE_CODEC,
    ZLIB_CODEC,
    CodecProfile,
    SpillConfig,
    TierSpec,
    TieredLedger,
    parse_tier,
    resolve_codec,
)


# ----------------------------------------------------------------------
# codec configuration
# ----------------------------------------------------------------------
class TestCodecConfig:
    def test_presets_resolve_by_name(self):
        assert resolve_codec("none") is NONE_CODEC
        assert resolve_codec("zlib") is ZLIB_CODEC
        assert resolve_codec(ZLIB_CODEC) is ZLIB_CODEC

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValidationError, match="unknown spill codec"):
            resolve_codec("brotli")

    def test_codec_validation(self):
        with pytest.raises(ValidationError, match="needs a name"):
            CodecProfile("")
        with pytest.raises(ValidationError, match="ratio"):
            CodecProfile("bad", ratio=0.0)
        with pytest.raises(ValidationError, match="ratio"):
            CodecProfile("bad", ratio=math.inf)
        with pytest.raises(ValidationError, match="encode_seconds_per_gb"):
            CodecProfile("bad", encode_seconds_per_gb=-1.0)

    def test_spill_config_resolves_codec(self):
        config = SpillConfig(codec="zlib")
        assert config.codec is ZLIB_CODEC
        assert SpillConfig().codec is NONE_CODEC
        with pytest.raises(ValidationError, match="unknown spill codec"):
            SpillConfig(codec="snappy")

    def test_tier_spec_codec_override(self):
        spec = TierSpec("ssd", 8.0, codec="zlib")
        assert spec.resolved_codec(NONE_CODEC) is ZLIB_CODEC
        assert TierSpec("ssd").resolved_codec(ZLIB_CODEC) is ZLIB_CODEC

    def test_parse_tier_with_codec(self):
        spec = parse_tier("ssd:8:zlib")
        assert spec.name == "ssd" and spec.budget == 8.0
        assert spec.codec is ZLIB_CODEC
        assert parse_tier("disk:inf:none").codec is NONE_CODEC
        with pytest.raises(ValidationError, match="unknown spill codec"):
            parse_tier("ssd:8:lzma")


# ----------------------------------------------------------------------
# tiered ledger: logical vs stored accounting
# ----------------------------------------------------------------------
def _zledger(ram=10.0, ssd=5.0, ratio=2.0, encode=1.0, decode=0.5,
             prefetch=False):
    codec = CodecProfile("test", ratio=ratio, encode_seconds_per_gb=encode,
                         decode_seconds_per_gb=decode)
    return TieredLedger(ram, SpillConfig(
        tiers=(TierSpec("ssd", ssd), TierSpec("disk")),
        codec=codec, prefetch=prefetch))


class TestCompressedAccounting:
    def test_tier_capacity_charged_compressed_ram_logical(self):
        ledger = _zledger(ram=10.0, ssd=5.0, ratio=2.0)
        ledger.insert("a", 8.0, n_consumers=1)
        ledger.spill_insert("b", 9.0, n_consumers=1)  # demotes a
        assert ledger.tier_of("a") == 1
        # ssd holds a's 8 GB logical as 4 GB stored — it fits a 5 GB tier
        assert ledger.stored_size_of("a") == 4.0
        assert ledger.size_of("a") == 8.0  # consumers still see logical
        assert ledger.tiers[1].ledger.usage == 4.0
        assert ledger.usage == 9.0  # RAM charged b's logical bytes

    def test_logical_size_restored_on_promote(self):
        ledger = _zledger(ram=10.0, ssd=5.0, ratio=2.0)
        ledger.insert("a", 8.0, n_consumers=2)
        ledger.spill_insert("b", 9.0, n_consumers=1)
        ledger.consumer_done("b")
        ledger.materialized("b")  # frees RAM
        charge = ledger.promote("a")
        assert charge is not None and charge.size == 8.0
        assert ledger.tier_of("a") == 0
        assert ledger.usage == 8.0  # logical bytes back in RAM
        assert ledger.tiers[1].ledger.usage == 0.0

    def test_demote_charges_encode_and_compressed_write(self):
        ledger = _zledger(ram=10.0, ratio=2.0, encode=1.0)
        ledger.insert("a", 8.0, n_consumers=1)
        charges = ledger.demote("a")
        assert len(charges) == 1
        ssd = ledger.tiers[1]
        expected = ssd.write_seconds(4.0, 0.0) + 1.0 * 8.0
        assert charges[0].seconds == pytest.approx(expected)
        assert charges[0].size == 8.0  # SpillCharge carries logical GB

    def test_read_back_charges_decode(self):
        ledger = _zledger(ram=10.0, ratio=2.0, decode=0.5)
        ledger.insert("a", 8.0, n_consumers=1)
        ledger.demote("a")
        ssd = ledger.tiers[1]
        expected = ssd.read_seconds(4.0, 0.0) + 0.5 * 8.0
        assert ledger.tier_read_seconds("a") == pytest.approx(expected)

    def test_stored_and_logical_spill_volumes_reported(self):
        ledger = _zledger(ram=10.0, ratio=2.0)
        ledger.insert("a", 8.0, n_consumers=1)
        ledger.demote("a")
        report = ledger.tier_report()
        assert report["spill_bytes_gb"] == 8.0
        assert report["spill_stored_gb"] == 4.0
        assert report["codec"] == "test"
        assert report["tiers"][1]["codec"] == "test"
        assert report["tiers"][1]["codec_ratio"] == 2.0
        assert report["tiers"][1]["logical"] == 8.0
        assert report["tiers"][1]["usage"] == 4.0

    def test_estimate_prices_encode_and_compression(self):
        plain = TieredLedger(10.0, SpillConfig(
            tiers=(TierSpec("ssd", 20.0), TierSpec("disk"))))
        packed = _zledger(ram=10.0, ssd=20.0, ratio=2.0, encode=0.0,
                          decode=0.0)
        for ledger in (plain, packed):
            ledger.insert("a", 8.0, n_consumers=0)
        # free codec at ratio 2: half the bytes cross the ssd device
        assert packed.estimate_spill_seconds(6.0) < \
            plain.estimate_spill_seconds(6.0)
        taxed = _zledger(ram=10.0, ssd=20.0, ratio=1.0001, encode=50.0)
        taxed.insert("a", 8.0, n_consumers=0)
        # a punitive encode stage makes the same spill dearer than raw
        assert taxed.estimate_spill_seconds(6.0) > \
            plain.estimate_spill_seconds(6.0)

    def test_per_tier_codec_override(self):
        codec = CodecProfile("only-disk", ratio=4.0)
        ledger = TieredLedger(10.0, SpillConfig(
            tiers=(TierSpec("ssd", 20.0),
                   TierSpec("disk", codec=codec))))
        ledger.insert("a", 8.0, n_consumers=1)
        ledger.demote("a")   # -> ssd, no codec
        assert ledger.stored_size_of("a") == 8.0
        ledger.demote("a")   # -> disk, 4x codec
        assert ledger.stored_size_of("a") == 2.0
        assert ledger.size_of("a") == 8.0


# ----------------------------------------------------------------------
# promote-ahead prefetching
# ----------------------------------------------------------------------
class TestPrefetch:
    def test_prefetch_promotes_spilled_parents(self):
        ledger = _zledger(ram=10.0, ssd=20.0, prefetch=True)
        ledger.insert("p", 6.0, n_consumers=1)
        ledger.demote("p")
        hidden = ledger.prefetch(["p", "absent"])
        assert hidden > 0.0
        assert ledger.tier_of("p") == 0
        report = ledger.tier_report()["prefetch"]
        assert report["enabled"] is True
        assert report["count"] == 1
        assert report["bytes_gb"] == 6.0
        assert report["hidden_seconds"] == pytest.approx(hidden)
        assert report["misses"] == 0

    def test_prefetch_never_demotes_to_make_room(self):
        ledger = _zledger(ram=10.0, ssd=20.0, prefetch=True)
        ledger.insert("p", 6.0, n_consumers=1)
        ledger.demote("p")
        ledger.insert("hog", 9.0, n_consumers=1)
        ledger.prefetch(["p"])
        assert ledger.tier_of("p") == 1  # did not fit, stayed put
        assert ledger.tier_of("hog") == 0  # and nothing was evicted
        assert ledger.tier_report()["prefetch"]["misses"] == 1

    def test_simulator_prefetch_reads_at_memory_bandwidth(self):
        from repro.core.optimizer import optimize
        from repro.workloads.generator import (
            GeneratedWorkloadConfig,
            WorkloadGenerator,
        )

        graph = WorkloadGenerator().generate(
            GeneratedWorkloadConfig(n_nodes=32, height_width_ratio=0.5),
            seed=0)
        budget = 0.3 * graph.total_size()
        plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                        method="sc", seed=0).plan
        peak = Controller().refresh(
            graph, budget, plan=plan, method="sc").peak_catalog_usage
        ram = 0.35 * peak
        tiers = (TierSpec("ssd", 0.5 * peak), TierSpec("disk"))
        runs = {}
        for prefetch in (False, True):
            spill = SpillConfig(tiers=tiers, codec="zlib",
                                prefetch=prefetch)
            runs[prefetch] = Controller(
                options=SimulatorOptions(spill=spill)).refresh(
                    graph, ram, plan=plan, method="sc")
        report = runs[True].extras["tiered_store"]["prefetch"]
        assert report["enabled"] and report["count"] > 0
        assert report["hidden_seconds"] > 0.0
        # prefetching hides promote I/O in idle windows: never slower
        assert runs[True].end_to_end_time <= runs[False].end_to_end_time
        off = runs[False].extras["tiered_store"]["prefetch"]
        assert off == {"enabled": False, "count": 0, "bytes_gb": 0.0,
                       "hidden_seconds": 0.0, "misses": 0}


# ----------------------------------------------------------------------
# codec-aware planning
# ----------------------------------------------------------------------
class TestCodecAwarePlanning:
    def test_capacity_scales_and_penalty_prices_codec(self):
        profile = DeviceProfile()
        tiers = (TierSpec("ssd", 8.0),)
        plain = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers), profile=profile)
        packed = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers, codec="zlib"), profile=profile)
        assert plain.tiers[0].capacity == 8.0
        assert plain.tiers[0].codec_ratio == 1.0
        assert packed.tiers[0].capacity == pytest.approx(8.0 * 2.6)
        assert packed.tiers[0].codec_ratio == 2.6
        # zlib on a fast ssd: transfer shrinks but encode+decode is a
        # real tax the planner must see in the per-GB penalty
        device = tiers[0].resolved_profile()
        raw = (1.0 / device.effective_write_bandwidth
               + 1.0 / device.effective_read_bandwidth)
        assert packed.tiers[0].penalty_seconds_per_gb == pytest.approx(
            raw / 2.6 + ZLIB_CODEC.encode_seconds_per_gb
            + ZLIB_CODEC.decode_seconds_per_gb)

    def test_favorable_codec_raises_effective_budget(self):
        profile = DeviceProfile()
        tiers = (TierSpec("disk", 8.0),)
        plain = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers), profile=profile)
        packed = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers, codec="zlib"), profile=profile)
        # on a slow disk zlib shrinks the round trip *and* multiplies
        # capacity — the planner may flag strictly more
        assert packed.effective_budget() > plain.effective_budget()
        assert packed.hostable_limit() > plain.hostable_limit()

    def test_none_codec_budget_is_bit_identical(self):
        profile = DeviceProfile()
        tiers = (TierSpec("ssd", 8.0), TierSpec("disk"))
        plain = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers), profile=profile)
        explicit = TierAwareBudget.from_spill(
            4.0, SpillConfig(tiers=tiers, codec="none"), profile=profile)
        assert plain == explicit


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
class TestSatelliteRegressions:
    def test_estimate_spill_seconds_ram_only_hierarchy(self):
        """A hierarchy reduced to the RAM rung must answer None (no
        demotion possible), not raise IndexError mid-arbitration."""
        ledger = TieredLedger(4.0, SpillConfig())
        ledger.insert("a", 3.0, n_consumers=1)
        ledger.tiers = ledger.tiers[:1]  # strip the spill tiers
        assert ledger.estimate_spill_seconds(2.0) is None
        assert ledger.estimate_spill_seconds(0.5) == 0.0  # still fits

    def test_random_tie_break_with_one_worker_rejected(self):
        with pytest.raises(ValidationError, match="workers=1"):
            create_backend("parallel", workers=1,
                           tie_break="random").run(
                *_small_case(), method="sc")

    def test_random_tie_break_with_many_workers_still_works(self):
        graph, plan, budget = _small_case()
        trace = create_backend("parallel", workers=3, seed=1,
                               tie_break="random").run(
            graph, plan, budget, method="sc")
        assert len(trace.nodes) == graph.n


def _small_case():
    from repro.core.optimizer import optimize
    from repro.workloads.generator import (
        GeneratedWorkloadConfig,
        WorkloadGenerator,
    )

    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=12, height_width_ratio=0.5),
        seed=0)
    budget = 0.4 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=0).plan
    return graph, plan, budget


# ----------------------------------------------------------------------
# MiniDB: real compressed spill dumps
# ----------------------------------------------------------------------
class TestMiniDbCompressedSpill:
    @pytest.fixture
    def workload(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.db.table import Table

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(7)
        n = 60_000
        db.register_table("events", Table({
            "user": rng.integers(0, 40, n),
            "amount": rng.uniform(0, 10, n),
        }))
        return SqlWorkload(db=db, definitions=[
            MvDefinition("mv_a", "SELECT user, amount FROM events "
                                 "WHERE amount > 1"),
            MvDefinition("mv_b", "SELECT user, amount FROM mv_a "
                                 "WHERE amount > 2"),
            MvDefinition("mv_c", "SELECT user, SUM(amount) AS s "
                                 "FROM mv_a GROUP BY user"),
            MvDefinition("mv_d", "SELECT user, amount FROM mv_b "
                                 "WHERE amount > 3"),
        ])

    def test_compressed_spill_measures_on_disk_bytes(self, workload,
                                                     tmp_path):
        profiled = workload.profile()
        plan = Controller().plan(profiled, 1000.0, method="sc")
        assert plan.flagged
        sizes = {n: profiled.size_of(n) for n in profiled.nodes()}
        ram = 1.1 * max(sizes[n] for n in plan.flagged)
        controller = Controller(spill_dir=str(tmp_path / "spill"),
                                spill=SpillConfig(codec="zlib"))
        trace = controller.refresh_on_minidb(workload, ram, method="sc",
                                             plan=plan)
        report = trace.extras["tiered_store"]
        assert report["spill_count"] > 0
        assert report["codec"] == "zlib"
        # integer columns compress: measured on-disk bytes undercut the
        # logical bytes the RAM ledger was charged
        assert 0.0 < report["spill_stored_gb"] < report["spill_bytes_gb"]
        assert trace.peak_catalog_usage <= ram + 1e-9
        for name in profiled.nodes():
            assert workload.db.catalog.persisted(name)
