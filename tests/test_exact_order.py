"""Tests for the exact order oracle, and MA-DFS quality measured by it."""

import random

import pytest

from repro.core.madfs import ma_dfs_order
from repro.core.residency import average_memory_usage
from repro.errors import ValidationError
from repro.graph.topo import is_topological_order
from repro.solver.exact_order import minimum_average_memory_order
from tests.conftest import make_fig7_problem, make_random_problem


class TestOracle:
    def test_chain_cost(self, chain_graph):
        order, cost = minimum_average_memory_order(chain_graph,
                                                   {"a", "b", "c"})
        assert is_topological_order(chain_graph, order)
        # a chain has one order; each flagged node resident for 1 step
        assert cost == pytest.approx(3 / 4)
        assert cost == pytest.approx(
            average_memory_usage(chain_graph, order, {"a", "b", "c"}))

    def test_matches_residency_model(self):
        for seed in range(6):
            problem = make_random_problem(seed, n_nodes=9)
            graph = problem.graph
            rng = random.Random(seed)
            flagged = {v for v in graph.nodes() if rng.random() < 0.5}
            order, cost = minimum_average_memory_order(graph, flagged)
            assert is_topological_order(graph, order)
            assert cost == pytest.approx(
                average_memory_usage(graph, order, flagged))

    def test_fig7_optimal_order(self):
        problem = make_fig7_problem()
        order, cost = minimum_average_memory_order(
            problem.graph, {"v1", "v3"})
        # the optimum releases v1 before v3 executes: v4 precedes v3
        assert order.index("v4") < order.index("v3")
        assert cost == pytest.approx(
            average_memory_usage(problem.graph, order, {"v1", "v3"}))

    def test_size_limit(self):
        problem = make_random_problem(0, n_nodes=25)
        with pytest.raises(ValidationError):
            minimum_average_memory_order(problem.graph, set())


class TestMaDfsOptimalityGap:
    def test_madfs_close_to_optimal_on_small_graphs(self):
        """MA-DFS is a heuristic; measure its gap against the true optimum
        across a population of small instances. The paper's claim is that
        its local optima are 'still of high quality' (§V-B)."""
        total_madfs = 0.0
        total_optimal = 0.0
        exact_hits = 0
        instances = 0
        for seed in range(25):
            problem = make_random_problem(seed, n_nodes=10)
            graph = problem.graph
            rng = random.Random(seed)
            flagged = {v for v in graph.nodes() if rng.random() < 0.45}
            if not flagged:
                continue
            instances += 1
            madfs_cost = average_memory_usage(
                graph, ma_dfs_order(graph, flagged), flagged)
            _, optimal_cost = minimum_average_memory_order(graph, flagged)
            assert madfs_cost >= optimal_cost - 1e-9  # oracle is a bound
            total_madfs += madfs_cost
            total_optimal += optimal_cost
            if madfs_cost <= optimal_cost + 1e-9:
                exact_hits += 1
        assert instances >= 20
        # within 25% of optimal in aggregate, exactly optimal often
        assert total_madfs <= 1.25 * total_optimal
        assert exact_hits / instances > 0.4
