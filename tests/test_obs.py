"""Tests for the observability subsystem (``repro.obs``).

Four contracts:

* **Metrics** — typed counters/gauges/histograms, overwrite-merge, and
  the descriptor-backed ledger tallies keeping their Python numeric
  types (so ``tier_report()`` serializes exactly as before).
* **Events + exporters** — Chrome-trace output is valid JSON with
  properly nested, per-lane non-overlapping spans; the JSONL log
  round-trips events (args included) losslessly; the text timeline
  renders every lane.
* **Off-by-default** — a run without a bus emits nothing, and the
  PR 5 golden scenario re-run on the instrumented code stays bit-equal
  to ``tests/data/golden_pr5_trace.json``.
* **Attribution report** — ``repro obs report`` reproduces
  ``RunTrace.breakdown()`` within float tolerance, and the trajectory
  gate (schema + regression checks over ``BENCH_*.json``) catches what
  it exists to catch.
"""

import json
import math
import pathlib

import pytest

from repro.bench.trajectory import (
    check_files,
    regression_gate,
    snapshot_date,
    tracked_metrics,
    validate_bench_file,
)
from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.obs.events import NULL_BUS, Event, EventBus, resolve_bus
from repro.obs.export import (
    chrome_trace,
    events_from_jsonl,
    events_to_jsonl,
    text_timeline,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    attribution_table,
    breakdown_from_stages,
    stage_totals,
)
from repro.store import SpillConfig, TierSpec
from repro.store.config import CodecAdaptConfig
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

GOLDEN_PR5 = (pathlib.Path(__file__).parent / "data"
              / "golden_pr5_trace.json")


def _pr5_scenario(bus=None):
    """The exact run ``golden_pr5_trace.json`` was generated from."""
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=26, height_width_ratio=0.5),
        seed=5)
    budget = 0.3 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=5).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    spill = SpillConfig(
        tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
        codec="zlib", prefetch=True, adapt=CodecAdaptConfig(samples=2))
    controller = Controller(options=SimulatorOptions(spill=spill),
                            bus=bus)
    return controller.refresh(graph, 0.4 * peak, plan=plan, method="sc")


@pytest.fixture(scope="module")
def traced_run():
    """One instrumented PR 5-scenario run shared by the export tests."""
    bus = EventBus()
    trace = _pr5_scenario(bus=bus)
    return bus, trace


class TestMetricsRegistry:
    def test_counter_keeps_numeric_type(self):
        registry = MetricsRegistry()
        counter = registry.counter("spills")
        assert counter.value == 0 and isinstance(counter.value, int)
        counter.inc()
        counter.inc(2)
        assert counter.value == 3 and isinstance(counter.value, int)
        counter.value += 0.5  # GB-style counters go float on first add
        assert isinstance(counter.value, float)

    def test_create_on_first_use_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_histogram_buckets_are_powers_of_two(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes")
        for value in (0.0, -1.0, 3.0, 4.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.min == -1.0 and histogram.max == 5.0
        # 0 and -1 -> 0-bucket; 3,4 -> 4; 5 -> 8
        assert histogram.buckets == {0.0: 2, 4.0: 2, 8.0: 1}
        assert histogram.mean == pytest.approx(11.0 / 5.0)

    def test_merge_overwrites_never_double_counts(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        second.counter("spills").value = 7
        second.gauge("usage").set(1.5)
        second.histogram("lat").observe(2.0)
        first.counter("spills").value = 99
        first.merge(second)
        first.merge(second)  # replan-style repeated merge
        snap = first.snapshot()
        assert snap["counters"]["spills"] == 7
        assert snap["gauges"]["usage"] == 1.5
        assert snap["histograms"]["lat"]["count"] == 1

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert "no metrics" in registry.render()
        registry.counter("a.count").inc()
        assert "a.count" in registry.render()


class TestEventBus:
    def test_null_bus_is_disabled_and_collects_nothing(self):
        assert NULL_BUS.enabled is False
        NULL_BUS.span("n", "node", "worker-0", 0.0, 1.0)
        NULL_BUS.instant("d", "store", "tier:ssd", 0.5)
        NULL_BUS.counter("gb", "tier:ssd", 0.5, 1.0)
        assert NULL_BUS.events == []

    def test_resolve_bus(self):
        assert resolve_bus(None) is NULL_BUS
        bus = EventBus()
        assert resolve_bus(bus) is bus

    def test_clear_drops_events_and_metrics(self):
        bus = EventBus()
        bus.instant("x", "run", "scheduler", 0.0)
        bus.metrics.counter("c").inc()
        bus.clear()
        assert bus.events == []
        assert bus.metrics.snapshot()["counters"] == {}

    def test_event_dict_roundtrip(self):
        event = Event("span", "mv_1", "node", "worker-3", 1.0, 2.5,
                      wall=0.01, args={"flagged": True})
        back = Event.from_dict(event.to_dict())
        assert back.to_dict() == event.to_dict()
        assert back.duration == pytest.approx(1.5)


def _spans_by_lane(events):
    lanes = {}
    for event in events:
        if event.kind == "span":
            lanes.setdefault(event.lane, []).append(event)
    return lanes


class TestInstrumentedRun:
    def test_all_event_kinds_and_lanes_present(self, traced_run):
        bus, trace = traced_run
        kinds = {event.kind for event in bus.events}
        assert kinds == {"span", "instant", "counter"}
        lanes = {event.lane for event in bus.events}
        assert "worker-0" in lanes
        assert any(lane.startswith("tier:") for lane in lanes)
        names = {event.name for event in bus.events}
        assert {"demote", "prefetch-hit", "run-finish"} <= names

    def test_per_lane_spans_nest_and_never_overlap(self, traced_run):
        bus, _ = traced_run
        for lane, spans in _spans_by_lane(bus.events).items():
            nodes = sorted((s for s in spans if s.cat == "node"),
                           key=lambda s: s.t0)
            phases = [s for s in spans if s.cat == "phase"]
            # node spans tile the lane without overlap
            for before, after in zip(nodes, nodes[1:]):
                assert before.t1 <= after.t0 + 1e-9, lane
            # every phase span nests inside exactly its node's span
            for phase in phases:
                owner = next(n for n in nodes
                             if n.name == phase.args["node"])
                assert owner.t0 - 1e-9 <= phase.t0
                assert phase.t1 <= owner.t1 + 1e-9
            # phases within one node are sequential
            for node in nodes:
                mine = sorted((p for p in phases
                               if p.args["node"] == node.name),
                              key=lambda p: p.t0)
                for before, after in zip(mine, mine[1:]):
                    assert before.t1 <= after.t0 + 1e-9

    def test_ledger_metrics_surface_on_the_bus(self, traced_run):
        bus, trace = traced_run
        report = trace.extras["tiered_store"]
        counters = bus.metrics.snapshot()["counters"]
        assert counters["store.spill.count"] == report["spill_count"]
        assert counters["store.prefetch.count"] == (
            report["prefetch"]["count"])
        assert bus.metrics.histogram("node.elapsed_seconds").count == (
            len(trace.nodes))


class TestChromeTraceExport:
    def test_valid_json_with_lane_metadata(self, traced_run, tmp_path):
        bus, _ = traced_run
        path = tmp_path / "run.trace.json"
        write_chrome_trace(bus.events, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "empty trace"
        assert {e["ph"] for e in events} <= {"M", "X", "C", "i"}
        meta = {e["args"]["name"]: e["tid"]
                for e in events if e["ph"] == "M"}
        assert "worker-0" in meta
        # every emitted event targets a named lane
        tids = {e["tid"] for e in events}
        assert tids == set(meta.values())

    def test_span_units_are_microseconds(self, traced_run):
        bus, _ = traced_run
        payload = chrome_trace(bus.events)
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        source = next(e for e in bus.events if e.kind == "span")
        assert span["ts"] == pytest.approx(source.t0 * 1e6)
        assert span["dur"] == pytest.approx(source.duration * 1e6)
        assert "wall_s" in span["args"]

    def test_counters_carry_values_and_instants_are_thread_scoped(
            self, traced_run):
        bus, _ = traced_run
        payload = chrome_trace(bus.events)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters and all("value" in e["args"] for e in counters)
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)


class TestJsonlExport:
    def test_roundtrip_is_lossless_including_args(self, traced_run,
                                                  tmp_path):
        bus, _ = traced_run
        path = tmp_path / "events.jsonl"
        events_to_jsonl(bus.events, path)
        back = events_from_jsonl(path)
        assert len(back) == len(bus.events)
        for original, restored in zip(bus.events, back):
            assert restored.to_dict() == original.to_dict()

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        events_to_jsonl([], path)
        assert events_from_jsonl(path) == []


class TestTextTimeline:
    def test_renders_every_lane(self, traced_run):
        bus, _ = traced_run
        text = text_timeline(bus.events)
        assert "[worker-0]" in text
        assert "#" in text   # span bars
        assert "|" in text

    def test_no_events(self):
        assert text_timeline([]) == "(no events)"


class TestOffByDefault:
    def test_events_off_run_emits_nothing_and_matches_pr5_golden(self):
        before = len(NULL_BUS.events)
        trace = _pr5_scenario(bus=None)
        assert len(NULL_BUS.events) == before  # nothing emitted
        golden = json.loads(GOLDEN_PR5.read_text())
        fresh = trace.to_dict()
        assert fresh["nodes"] == golden["nodes"]
        for key in golden:
            if key != "extras":
                assert fresh[key] == golden[key], key

    def test_instrumented_run_is_bit_equal_to_uninstrumented(self):
        assert (_pr5_scenario(bus=EventBus()).to_json()
                == _pr5_scenario(bus=None).to_json())


class TestAttributionReport:
    def test_stage_totals_match_trace_properties(self, traced_run):
        _, trace = traced_run
        totals = stage_totals(trace)
        assert totals["compute"] == pytest.approx(trace.compute_latency)
        assert (totals["read (disk)"] + totals["read (memory)"]
                == pytest.approx(trace.table_read_latency))
        assert totals["stall"] == pytest.approx(trace.stall_time)

    def test_breakdown_matches_runtrace_breakdown(self, traced_run):
        _, trace = traced_run
        ours = breakdown_from_stages(stage_totals(trace))
        theirs = trace.breakdown()
        for key in ("read", "compute", "write"):
            assert ours[key] == pytest.approx(theirs[key])

    def test_table_renders_every_stage_and_the_fig3_axes(self,
                                                         traced_run):
        _, trace = traced_run
        text = attribution_table(trace)
        for label in ("read (disk)", "compute", "spill write",
                      "total attributed", "figure-3 axes"):
            assert label in text


class TestTrajectoryGate:
    def _snapshot(self, seconds):
        return {"experiment": "demo", "title": "demo",
                "headers": ["arm", "s"], "rows": [["a", seconds]],
                "data": {"totals": {"a": {"p50": seconds}}}}

    def test_valid_snapshot_passes(self):
        assert validate_bench_file(self._snapshot(1.0)) == []

    def test_missing_keys_and_ragged_rows_flagged(self):
        payload = self._snapshot(1.0)
        del payload["experiment"]
        payload["rows"] = [["only-one-cell"]]
        errors = validate_bench_file(payload, name="bad")
        assert any("experiment" in e for e in errors)
        assert any("cells" in e for e in errors)

    def test_non_finite_numbers_flagged(self):
        payload = self._snapshot(math.nan)
        errors = validate_bench_file(payload)
        assert any("non-finite" in e for e in errors)

    def test_tracked_metrics_flatten_totals(self):
        metrics = tracked_metrics(self._snapshot(2.5))
        assert metrics == {"totals.a.p50": 2.5}

    def test_gate_fails_beyond_noise_and_passes_within(self):
        old = self._snapshot(10.0)
        assert regression_gate(old, self._snapshot(10.4)) == []
        failures = regression_gate(old, self._snapshot(11.0))
        assert len(failures) == 1 and "totals.a.p50" in failures[0]
        # improvements never fail
        assert regression_gate(old, self._snapshot(5.0)) == []

    def test_snapshot_date_parsing(self):
        assert snapshot_date("BENCH_2026-08-07.json") == "2026-08-07"
        assert snapshot_date("/x/BENCH_2026-08-07.json") == "2026-08-07"
        assert snapshot_date("other.json") is None

    def test_check_files_gates_consecutive_dates(self, tmp_path):
        old = tmp_path / "BENCH_2026-01-01.json"
        new = tmp_path / "BENCH_2026-01-02.json"
        old.write_text(json.dumps(self._snapshot(10.0)))
        new.write_text(json.dumps(self._snapshot(20.0)))
        problems = check_files([str(old), str(new)])
        assert len(problems) == 1 and "totals.a.p50" in problems[0]

    def test_repo_snapshots_are_valid(self):
        root = pathlib.Path(__file__).parent.parent
        paths = sorted(str(p) for p in root.glob("BENCH_*.json"))
        assert paths, "no BENCH snapshots at the repo root"
        assert check_files(paths) == []


class TestCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph.io import save_graph
        from tests.conftest import make_fig7_problem

        path = str(tmp_path / "graph.json")
        save_graph(make_fig7_problem().graph, path)
        return path

    def _simulate(self, graph_file, *extra):
        from repro.cli import main

        return main(["simulate", graph_file, "--tier", "ram:60",
                     "--tier", "ssd:100", "--tier", "disk:inf",
                     *extra])

    def test_events_chrome_trace_written(self, graph_file, tmp_path,
                                         capsys):
        out = str(tmp_path / "run.trace.json")
        assert self._simulate(graph_file, "--events", out) == 0
        payload = json.loads(open(out).read())
        assert payload["traceEvents"]
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_events_jsonl_written(self, graph_file, tmp_path):
        out = str(tmp_path / "run.jsonl")
        assert self._simulate(graph_file, "--events", out) == 0
        events = events_from_jsonl(out)
        assert any(e.kind == "span" for e in events)

    def test_metrics_flag_prints_registry(self, graph_file, capsys):
        assert self._simulate(graph_file, "--metrics") == 0
        out = capsys.readouterr().out
        assert "=== metrics ===" in out
        assert "store.spill.count" in out

    def test_obs_report_subcommand(self, graph_file, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "run.json")
        assert self._simulate(graph_file, "--save-trace",
                              trace_path) == 0
        capsys.readouterr()
        assert main(["obs", "report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "per-stage attribution" in out
        assert "figure-3 axes" in out
