"""Tests for relational operators, including a nested-loop join oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.expressions import AggSpec, BinOp, Col, Lit, Not, Projection
from repro.db.operators import (
    aggregate,
    filter_rows,
    hash_join,
    limit,
    project,
    sort_rows,
    union_all,
)
from repro.db.table import Table
from repro.errors import SqlError, ValidationError


@pytest.fixture
def sales() -> Table:
    return Table({
        "item": np.array([1, 2, 1, 3, 2, 1]),
        "qty": np.array([5, 3, 2, 7, 1, 4]),
        "price": np.array([10.0, 20.0, 10.0, 5.0, 20.0, 10.0]),
    })


@pytest.fixture
def items() -> Table:
    return Table({
        "item": np.array([1, 2, 3, 4]),
        "category": np.array([100, 200, 100, 300]),
    })


class TestFilterProject:
    def test_filter(self, sales):
        result = filter_rows(sales, BinOp(">", Col("qty"), Lit(3)))
        assert result["qty"].tolist() == [5, 7, 4]

    def test_filter_requires_boolean(self, sales):
        with pytest.raises(SqlError):
            filter_rows(sales, Col("qty"))

    def test_compound_predicate(self, sales):
        predicate = BinOp("AND",
                          BinOp(">", Col("qty"), Lit(1)),
                          Not(BinOp("=", Col("item"), Lit(1))))
        result = filter_rows(sales, predicate)
        assert result["item"].tolist() == [2, 3]

    def test_project_expressions(self, sales):
        result = project(sales, [
            Projection(Col("item"), "item"),
            Projection(BinOp("*", Col("qty"), Col("price")), "revenue"),
        ])
        assert result["revenue"].tolist() == [50.0, 60.0, 20.0, 35.0,
                                              20.0, 40.0]

    def test_duplicate_aliases_rejected(self, sales):
        with pytest.raises(SqlError):
            project(sales, [Projection(Col("item"), "x"),
                            Projection(Col("qty"), "x")])


class TestJoin:
    def test_inner_join_matches_oracle(self, sales, items):
        joined = hash_join(sales, items, "item", "item")
        assert len(joined) == 6
        expected_categories = {1: 100, 2: 200, 3: 100}
        for row in joined.to_pylist():
            assert row["category"] == expected_categories[row["item"]]

    def test_unmatched_rows_dropped(self, items):
        left = Table({"item": np.array([1, 99])})
        joined = hash_join(left, items, "item", "item")
        assert joined["item"].tolist() == [1]

    def test_duplicate_right_keys_expand(self):
        left = Table({"k": np.array([1])})
        right = Table({"k": np.array([1, 1, 1]),
                       "v": np.array([7, 8, 9])})
        joined = hash_join(left, right, "k", "k")
        assert sorted(joined["v"].tolist()) == [7, 8, 9]

    def test_collision_renamed_with_prefix(self):
        left = Table({"k": np.array([1]), "v": np.array([1])})
        right = Table({"k": np.array([1]), "v": np.array([2])})
        joined = hash_join(left, right, "k", "k", right_prefix="r")
        assert joined["v"].tolist() == [1]
        assert joined["r_v"].tolist() == [2]

    def test_dtype_mismatch_rejected(self):
        left = Table({"k": np.array([1])})
        right = Table({"k": np.array(["a"])})
        with pytest.raises(SqlError):
            hash_join(left, right, "k", "k")


class TestAggregate:
    def test_group_by_sums(self, sales):
        result = aggregate(sales, ["item"], [
            AggSpec("SUM", Col("qty"), "total_qty"),
            AggSpec("COUNT", None, "n"),
            AggSpec("AVG", Col("price"), "avg_price"),
            AggSpec("MIN", Col("qty"), "min_qty"),
            AggSpec("MAX", Col("qty"), "max_qty"),
        ])
        by_item = {row["item"]: row for row in result.to_pylist()}
        assert by_item[1]["total_qty"] == 11
        assert by_item[1]["n"] == 3
        assert by_item[1]["avg_price"] == pytest.approx(10.0)
        assert by_item[2]["min_qty"] == 1
        assert by_item[2]["max_qty"] == 3

    def test_global_aggregate(self, sales):
        result = aggregate(sales, [], [
            AggSpec("SUM", Col("qty"), "total"),
            AggSpec("COUNT", None, "n"),
        ])
        assert len(result) == 1
        assert result["total"].tolist() == [22]
        assert result["n"].tolist() == [6]

    def test_empty_input(self, sales):
        empty = sales.mask(np.zeros(len(sales), dtype=bool))
        grouped = aggregate(empty, ["item"],
                            [AggSpec("SUM", Col("qty"), "s")])
        assert len(grouped) == 0
        overall = aggregate(empty, [], [AggSpec("COUNT", None, "n")])
        assert overall["n"].tolist() == [0]

    def test_multi_key_grouping(self, sales):
        result = aggregate(sales, ["item", "price"],
                           [AggSpec("COUNT", None, "n")])
        assert len(result) == 3

    def test_agg_validation(self):
        with pytest.raises(ValidationError):
            AggSpec("MEDIAN", Col("x"), "m")
        with pytest.raises(ValidationError):
            AggSpec("SUM", None, "s")


class TestSortLimitUnion:
    def test_sort_multi_key(self, sales):
        result = sort_rows(sales, ["item", "qty"], [True, False])
        assert result["item"].tolist() == [1, 1, 1, 2, 2, 3]
        assert result["qty"].tolist()[:3] == [5, 4, 2]

    def test_sort_validation(self, sales):
        with pytest.raises(ValidationError):
            sort_rows(sales, [])
        with pytest.raises(ValidationError):
            sort_rows(sales, ["item"], [True, False])

    def test_limit(self, sales):
        assert len(limit(sales, 2)) == 2
        assert len(limit(sales, 100)) == 6
        with pytest.raises(ValidationError):
            limit(sales, -1)

    def test_union_all(self, sales):
        doubled = union_all([sales, sales])
        assert len(doubled) == 12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n_left=st.integers(0, 30),
       n_right=st.integers(0, 30), key_space=st.integers(1, 8))
def test_property_join_matches_nested_loop(seed, n_left, n_right,
                                           key_space):
    rng = np.random.default_rng(seed)
    left = Table({"k": rng.integers(0, key_space, n_left),
                  "lv": rng.integers(0, 100, n_left)})
    right = Table({"k": rng.integers(0, key_space, n_right),
                   "rv": rng.integers(0, 100, n_right)})
    joined = hash_join(left, right, "k", "k")

    expected = sorted(
        (int(lk), int(lv), int(rv))
        for lk, lv in zip(left["k"], left["lv"])
        for rk, rv in zip(right["k"], right["rv"])
        if lk == rk
    )
    actual = sorted(
        (row["k"], row["lv"], row["rv"]) for row in joined.to_pylist())
    assert actual == expected
