"""Tests for incremental views and pipelines (repro.ivm.view/pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.expressions import AggSpec, BinOp, Col, Lit, Projection
from repro.db.table import Table
from repro.errors import ValidationError
from repro.ivm.delta import SignedDelta
from repro.ivm.estimate import choose_refresh_mode
from repro.ivm.pipeline import IncrementalPipeline
from repro.ivm.view import (
    Aggregate,
    Filter,
    IncrementalView,
    Join,
    Project,
    Scan,
    Union,
    evaluate_plan,
)


def sales_table() -> Table:
    return Table.from_dict({
        "item": np.array([1, 1, 2, 2, 3], dtype=np.int64),
        "qty": np.array([2, 3, 1, 4, 5], dtype=np.int64),
        "price": np.array([10.0, 10.0, 20.0, 20.0, 5.0]),
    })


def items_table() -> Table:
    return Table.from_dict({
        "item": np.array([1, 2, 3], dtype=np.int64),
        "category": np.array(["a", "b", "a"]),
    })


def multiset(table: Table) -> list[str]:
    return sorted(map(repr, table.to_pylist()))


class TestEvaluatePlan:
    def test_scan(self):
        catalog = {"sales": sales_table()}
        assert evaluate_plan(Scan("sales"), catalog).equals(sales_table())

    def test_unknown_source(self):
        with pytest.raises(ValidationError):
            evaluate_plan(Scan("nope"), {})

    def test_composed_tree(self):
        catalog = {"sales": sales_table(), "items": items_table()}
        plan = Aggregate(
            Join(Filter(Scan("sales"), BinOp(">", Col("qty"), Lit(1))),
                 Scan("items"), "item", "item"),
            group_by=("category",),
            aggs=(AggSpec("SUM", Col("qty"), "total"),))
        result = evaluate_plan(plan, catalog)
        rows = {r["category"]: r["total"] for r in result.to_pylist()}
        assert rows == {"a": 10, "b": 4}


class TestIncrementalViewFilterProject:
    def plan(self):
        return Project(
            Filter(Scan("sales"), BinOp(">=", Col("qty"), Lit(2))),
            projections=(Projection(Col("item"), "item"),
                         Projection(BinOp("*", Col("qty"), Col("price")),
                                    "revenue")))

    def test_maintained_equals_recompute(self):
        view = IncrementalView("rev", self.plan())
        catalog = {"sales": sales_table()}
        view.materialize(catalog)
        delta = SignedDelta.from_changes(
            Table.from_dict({"item": [4], "qty": [6], "price": [2.0]}),
            sales_table().head(1))
        view.apply_deltas({"sales": delta})
        new_catalog = {"sales":
                       __import__("repro.ivm.delta", fromlist=["x"])
                       .apply_delta(sales_table(), delta)}
        expected = evaluate_plan(self.plan(), new_catalog)
        assert multiset(view.table) == multiset(expected)

    def test_requires_materialization_first(self):
        view = IncrementalView("rev", self.plan())
        with pytest.raises(ValidationError):
            view.apply_deltas({})

    def test_missing_source_delta_raises(self):
        view = IncrementalView("rev", self.plan())
        view.materialize({"sales": sales_table()})
        with pytest.raises(ValidationError):
            view.apply_deltas({})


class TestIncrementalViewAggregate:
    def sum_plan(self):
        return Aggregate(Scan("sales"), group_by=("item",),
                         aggs=(AggSpec("SUM", Col("qty"), "total"),
                               AggSpec("COUNT", None, "n")))

    def minmax_plan(self):
        return Aggregate(Scan("sales"), group_by=("item",),
                         aggs=(AggSpec("MIN", Col("qty"), "lo"),
                               AggSpec("MAX", Col("qty"), "hi")))

    def check(self, plan, delta):
        view = IncrementalView("agg", plan)
        view.materialize({"sales": sales_table()})
        view.apply_deltas({"sales": delta})
        from repro.ivm.delta import apply_delta
        expected = evaluate_plan(plan,
                                 {"sales": apply_delta(sales_table(),
                                                       delta)})
        assert multiset(view.table) == multiset(expected)

    def test_sum_count_insert(self):
        self.check(self.sum_plan(), SignedDelta.from_inserts(
            Table.from_dict({"item": [1, 9], "qty": [7, 1],
                             "price": [10.0, 1.0]})))

    def test_sum_count_delete_clears_group(self):
        self.check(self.sum_plan(), SignedDelta.from_deletes(
            Table.from_dict({"item": [3], "qty": [5], "price": [5.0]})))

    def test_min_max_deletion_exposes_new_extremum(self):
        # deleting the max of item 2 (qty=4) must surface qty=1 as new max
        self.check(self.minmax_plan(), SignedDelta.from_deletes(
            Table.from_dict({"item": [2], "qty": [4], "price": [20.0]})))

    def test_scalar_aggregate(self):
        plan = Aggregate(Scan("sales"), group_by=(),
                         aggs=(AggSpec("SUM", Col("qty"), "total"),))
        self.check(plan, SignedDelta.from_inserts(
            Table.from_dict({"item": [5], "qty": [100],
                             "price": [1.0]})))

    def test_empty_delta_produces_empty_output_delta(self):
        view = IncrementalView("agg", self.sum_plan())
        view.materialize({"sales": sales_table()})
        out = view.apply_deltas(
            {"sales": SignedDelta.empty(sales_table())})
        assert out.is_empty


class TestPipeline:
    def build(self) -> IncrementalPipeline:
        pipe = IncrementalPipeline({"sales": sales_table(),
                                    "items": items_table()})
        pipe.add_view("big_sales",
                      Filter(Scan("sales"), BinOp(">", Col("qty"), Lit(1))))
        pipe.add_view("named",
                      Join(Scan("big_sales"), Scan("items"),
                           "item", "item"))
        pipe.add_view("by_category",
                      Aggregate(Scan("named"), group_by=("category",),
                                aggs=(AggSpec("SUM", Col("qty"), "total"),)))
        pipe.add_view("all_and_big",
                      Union((Scan("big_sales"), Scan("big_sales"))))
        return pipe

    def test_duplicate_name_rejected(self):
        pipe = self.build()
        with pytest.raises(ValidationError):
            pipe.add_view("sales", Scan("items"))

    def test_unknown_source_rejected(self):
        pipe = self.build()
        with pytest.raises(ValidationError):
            pipe.add_view("bad", Scan("missing"))

    def test_view_order_topological(self):
        order = self.build().view_order()
        assert order.index("big_sales") < order.index("named")
        assert order.index("named") < order.index("by_category")

    def test_materialize_all_then_verify(self):
        pipe = self.build()
        pipe.materialize_all()
        pipe.verify_against_full_recompute()

    def test_ingest_maintains_whole_dag(self):
        pipe = self.build()
        pipe.materialize_all()
        delta = SignedDelta.from_changes(
            Table.from_dict({"item": [2, 3], "qty": [9, 2],
                             "price": [20.0, 5.0]}),
            sales_table().head(2))
        report = pipe.ingest({"sales": delta})
        pipe.verify_against_full_recompute()
        assert report.total_changed_rows > 0
        assert set(report.view_deltas) == set(pipe.views)

    def test_ingest_unknown_base_rejected(self):
        pipe = self.build()
        pipe.materialize_all()
        with pytest.raises(ValidationError):
            pipe.ingest({"nope": SignedDelta.empty(sales_table())})

    def test_two_rounds_of_ingest(self):
        pipe = self.build()
        pipe.materialize_all()
        d1 = SignedDelta.from_inserts(
            Table.from_dict({"item": [1], "qty": [8], "price": [10.0]}))
        d2 = SignedDelta.from_deletes(
            Table.from_dict({"item": [1], "qty": [8], "price": [10.0]}))
        pipe.ingest({"sales": d1})
        pipe.ingest({"sales": d2})
        pipe.verify_against_full_recompute()

    def test_items_delta_propagates_through_join(self):
        pipe = self.build()
        pipe.materialize_all()
        delta = SignedDelta.from_inserts(
            Table.from_dict({"item": [4], "category": ["c"]}))
        pipe.ingest({"items": delta})
        pipe.verify_against_full_recompute()


class TestScBridge:
    def test_to_sc_problem_shapes(self):
        pipe = TestPipeline().build()
        pipe.materialize_all()
        delta = SignedDelta.from_inserts(
            Table.from_dict({"item": [1], "qty": [7], "price": [10.0]}))
        report = pipe.ingest({"sales": delta})
        problem = pipe.to_sc_problem(report, memory_budget_gb=1.0)
        assert problem.graph.n == len(pipe.views)
        assert problem.graph.has_edge("big_sales", "named")
        # every node got a nonnegative score and positive size
        for node in problem.graph.nodes():
            assert problem.graph.size_of(node) > 0
            assert problem.graph.score_of(node) >= 0

    def test_optimizer_runs_on_bridge_output(self):
        from repro.core.optimizer import optimize
        pipe = TestPipeline().build()
        pipe.materialize_all()
        delta = SignedDelta.from_inserts(
            Table.from_dict({"item": [2], "qty": [3], "price": [20.0]}))
        report = pipe.ingest({"sales": delta})
        problem = pipe.to_sc_problem(report, memory_budget_gb=1.0)
        result = optimize(problem, method="sc")
        assert set(result.plan.order) == set(pipe.views)


class TestRefreshModeChoice:
    def test_small_delta_prefers_incremental(self):
        decision = choose_refresh_mode(
            "v", input_gb=10.0, output_gb=5.0, input_delta_gb=0.01,
            output_delta_gb=0.005)
        assert decision.mode == "incremental"

    def test_full_churn_prefers_full(self):
        decision = choose_refresh_mode(
            "v", input_gb=1.0, output_gb=1.0, input_delta_gb=1.0,
            output_delta_gb=1.0)
        assert decision.mode == "full"

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValidationError):
            choose_refresh_mode("v", -1.0, 1.0, 0.1, 0.1)


@st.composite
def _pipeline_rounds(draw):
    """Random base contents plus two rounds of random legal deltas."""
    def sales(n):
        return Table.from_dict({
            "item": np.array(draw(st.lists(st.integers(1, 4),
                                           min_size=n, max_size=n)),
                             dtype=np.int64),
            "qty": np.array(draw(st.lists(st.integers(1, 9),
                                          min_size=n, max_size=n)),
                            dtype=np.int64),
        })

    base = sales(draw(st.integers(1, 8)))
    rounds = []
    current = base
    for _ in range(2):
        inserts = sales(draw(st.integers(0, 4)))
        n_del = draw(st.integers(0, min(2, len(current))))
        deletes = current.take(np.arange(n_del))
        delta = SignedDelta.from_changes(inserts, deletes)
        from repro.ivm.delta import apply_delta
        current = apply_delta(current, delta)
        rounds.append(delta)
    return base, rounds


class TestPipelinePropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(_pipeline_rounds())
    def test_multi_round_golden_invariant(self, case):
        base, rounds = case
        pipe = IncrementalPipeline({"sales": base})
        pipe.add_view("big",
                      Filter(Scan("sales"), BinOp(">", Col("qty"), Lit(2))))
        pipe.add_view("totals",
                      Aggregate(Scan("big"), group_by=("item",),
                                aggs=(AggSpec("SUM", Col("qty"), "total"),
                                      AggSpec("MAX", Col("qty"), "hi"))))
        pipe.materialize_all()
        for delta in rounds:
            pipe.ingest({"sales": delta})
            pipe.verify_against_full_recompute()
