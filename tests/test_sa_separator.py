"""Tests for the SA and Separator order baselines."""

import random

import pytest

from repro.core.residency import average_memory_usage
from repro.errors import GraphError, ValidationError
from repro.graph.dag import DependencyGraph
from repro.graph.generators import generate_layered_dag, LayeredDagConfig
from repro.graph.topo import is_topological_order, kahn_topological_order
from repro.solver.sa import AnnealingSchedule, anneal_order, swap_is_valid
from repro.solver.separator import separator_order


def sized_graph(seed: int = 0, n: int = 24) -> DependencyGraph:
    graph = generate_layered_dag(LayeredDagConfig(n_nodes=n), seed=seed)
    rng = random.Random(seed)
    for v in graph.nodes():
        graph.node(v).size = rng.uniform(0.5, 10.0)
    return graph


class TestSwapValidity:
    def test_direct_dependency_blocks_swap(self, chain_graph):
        order = ["a", "b", "c", "d"]
        position = {v: i for i, v in enumerate(order)}
        assert not swap_is_valid(chain_graph, order, position, 0, 1)
        assert not swap_is_valid(chain_graph, order, position, 1, 3)

    def test_independent_nodes_swap(self, diamond_graph):
        order = ["a", "b", "c", "d"]
        position = {v: i for i, v in enumerate(order)}
        assert swap_is_valid(diamond_graph, order, position, 1, 2)


class TestAnnealing:
    def test_schedule_validation(self):
        with pytest.raises(ValidationError):
            AnnealingSchedule(iterations=-1)
        with pytest.raises(ValidationError):
            AnnealingSchedule(cooling=0.0)
        with pytest.raises(ValidationError):
            AnnealingSchedule(initial_temperature=0.0)

    def test_produces_valid_topological_order(self):
        graph = sized_graph(seed=1)
        flagged = frozenset(list(graph.nodes())[:8])
        initial = kahn_topological_order(graph)

        def objective(order):
            return average_memory_usage(graph, order, flagged)

        result = anneal_order(graph, initial, objective,
                              AnnealingSchedule(iterations=500),
                              rng=random.Random(0))
        assert is_topological_order(graph, result)

    def test_never_worse_than_initial(self):
        graph = sized_graph(seed=2)
        flagged = frozenset(list(graph.nodes())[:10])
        initial = kahn_topological_order(graph)

        def objective(order):
            return average_memory_usage(graph, order, flagged)

        result = anneal_order(graph, initial, objective,
                              AnnealingSchedule(iterations=2000),
                              rng=random.Random(1))
        assert objective(result) <= objective(initial) + 1e-9

    def test_single_node_graph(self):
        graph = DependencyGraph()
        graph.add_node("only")
        result = anneal_order(graph, ["only"], lambda order: 0.0)
        assert result == ["only"]

    def test_wrong_initial_order_rejected(self, diamond_graph):
        with pytest.raises(ValidationError):
            anneal_order(diamond_graph, ["a", "b"], lambda o: 0.0)


class TestSeparator:
    def test_valid_topological_order(self):
        graph = sized_graph(seed=3)
        order = separator_order(graph, set(list(graph.nodes())[:5]))
        assert is_topological_order(graph, order)

    def test_empty_flag_set(self, diamond_graph):
        order = separator_order(diamond_graph)
        assert is_topological_order(diamond_graph, order)

    def test_unknown_flagged_node_rejected(self, diamond_graph):
        with pytest.raises(GraphError):
            separator_order(diamond_graph, {"ghost"})

    def test_deterministic(self):
        graph = sized_graph(seed=4)
        flagged = set(list(graph.nodes())[:6])
        assert separator_order(graph, flagged) == \
            separator_order(graph, flagged)
