"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and \
                obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_cycle_error_carries_cycle():
    err = errors.CycleError("boom", cycle=["a", "b", "a"])
    assert err.cycle == ["a", "b", "a"]
    assert errors.CycleError("no cycle info").cycle is None


def test_infeasible_plan_error_fields():
    err = errors.InfeasiblePlanError("over", peak=12.0, budget=10.0)
    assert err.peak == 12.0
    assert err.budget == 10.0


def test_budget_exceeded_fields():
    err = errors.BudgetExceededError("full", requested=5.0, available=1.0)
    assert err.requested == 5.0
    assert err.available == 1.0
    assert isinstance(err, errors.CatalogError)
    assert isinstance(err, errors.ExecutionError)


def test_sql_error_position():
    err = errors.SqlError("bad", sql="SELEC", position=0)
    assert err.sql == "SELEC"
    assert err.position == 0


def test_solver_timeout_carries_incumbent():
    err = errors.SolverTimeoutError("slow", incumbent=[1, 2])
    assert err.incumbent == [1, 2]
    assert isinstance(err, errors.SolverError)
