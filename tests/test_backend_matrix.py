"""Cross-backend equivalence matrix + PR 4/PR 5 golden regressions.

Two contracts pin the new feedback-loop knobs:

* **Matrix** — across (arbitration on/off) x (codec none/zlib) x
  (prefetch on/off) x (feedback replan on/off), every run's ``RunTrace``
  JSON round-trips losslessly and the serial simulator and the parallel
  backend at ``workers=1`` stay bit-equal.

* **Golden file** — with every post-PR 4 knob disabled (no
  compressibility meta, no adaptation, no feedback), the fixed scenario
  in ``tests/data/golden_pr4_trace.json`` (generated from the PR 4
  code, *before* this subsystem existed) must be reproduced exactly:
  node traces bit-for-bit and every report field PR 4 emitted unchanged
  (new report fields may be added next to them, never instead of them).

Regenerate the golden only when a PR deliberately changes the default
pipeline's numbers — and say so in the commit.
"""

import json
import pathlib

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import RunTrace
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_pr4_trace.json"
GOLDEN_PR5 = (pathlib.Path(__file__).parent / "data"
              / "golden_pr5_trace.json")


def _fixed_case(n_nodes=28, seed=0):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=0.5),
        seed=seed)
    budget = 0.3 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    return graph, plan, peak


def _subset_equal(golden, fresh, path=""):
    """Every key/value the golden carries must appear unchanged in the
    fresh payload; additional fresh keys are allowed (new telemetry)."""
    if isinstance(golden, dict):
        for key, value in golden.items():
            assert key in fresh, f"missing report field {path}{key}"
            _subset_equal(value, fresh[key], f"{path}{key}.")
    elif isinstance(golden, list):
        assert len(golden) == len(fresh), f"length drift at {path}"
        for i, (a, b) in enumerate(zip(golden, fresh)):
            _subset_equal(a, b, f"{path}[{i}].")
    else:
        assert golden == fresh, (path, golden, fresh)


class TestGoldenRegression:
    def test_knobs_off_reproduces_pr4_trace(self):
        """The exact scenario the golden was generated from, re-run with
        the current code and every new knob at its default."""
        graph, plan, peak = _fixed_case()
        ram = 0.4 * peak
        spill = SpillConfig(tiers=(TierSpec("ssd", 0.5 * peak),
                                   TierSpec("disk")))
        trace = Controller(options=SimulatorOptions(spill=spill)).refresh(
            graph, ram, plan=plan, method="sc")
        golden = json.loads(GOLDEN.read_text())
        fresh = trace.to_dict()
        # node timelines: bit-for-bit, no subset tolerance
        assert fresh["nodes"] == golden["nodes"]
        for key in golden:
            if key != "extras":
                assert fresh[key] == golden[key], key
        # report: every PR 4 field unchanged; new fields may ride along
        _subset_equal(golden["extras"], fresh["extras"])

    def test_golden_scenario_still_spills(self):
        """The golden is only a regression anchor while it exercises
        the tiered pipeline; guard against workload drift."""
        golden = json.loads(GOLDEN.read_text())
        assert golden["extras"]["tiered_store"]["spill_count"] > 0

    def test_knobs_off_reproduces_pr5_trace(self):
        """PR 5 anchor: the full feedback-era pipeline (zlib codec,
        prefetch, adaptive re-pricing) with every PR 6 knob off — no
        ram-compressed rung — re-run on current code.  The golden was
        generated from the PR 5 code, so passing proves the rung, the
        new codecs and the demote bypass left the existing pipeline
        bit-equal."""
        from repro.store.config import CodecAdaptConfig

        graph, plan, peak = _fixed_case(n_nodes=26, seed=5)
        ram = 0.4 * peak
        spill = SpillConfig(
            tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
            codec="zlib", prefetch=True,
            adapt=CodecAdaptConfig(samples=2))
        trace = Controller(options=SimulatorOptions(spill=spill)).refresh(
            graph, ram, plan=plan, method="sc")
        golden = json.loads(GOLDEN_PR5.read_text())
        fresh = trace.to_dict()
        assert fresh["nodes"] == golden["nodes"]
        for key in golden:
            if key != "extras":
                assert fresh[key] == golden[key], key
        _subset_equal(golden["extras"], fresh["extras"])

    def test_pr5_golden_scenario_still_exercises_the_pipeline(self):
        report = json.loads(GOLDEN_PR5.read_text())[
            "extras"]["tiered_store"]
        assert report["spill_count"] > 0
        assert report["prefetch"]["count"] > 0
        assert report["codec_adapt"]["tiers"], "adaptation never decided"


class TestBackendMatrix:
    @pytest.mark.parametrize("arbitrate", [True, False])
    @pytest.mark.parametrize("codec", ["none", "zlib"])
    @pytest.mark.parametrize("prefetch", [True, False])
    @pytest.mark.parametrize("feedback", [True, False])
    def test_serial_workers1_bit_equal_and_json_roundtrip(
            self, arbitrate, codec, prefetch, feedback):
        graph, plan, peak = _fixed_case(n_nodes=22, seed=3)
        ram = 0.4 * peak
        spill = SpillConfig(
            tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
            arbitrate=arbitrate, codec=codec, prefetch=prefetch)
        controller = Controller(options=SimulatorOptions(spill=spill))
        if feedback:
            first = controller.refresh(graph, ram, plan=plan,
                                       method="sc")
            plan = controller.replan_from_trace(graph, first, ram)
        serial = controller.refresh(graph, ram, plan=plan, method="sc")
        workers1 = controller.refresh(graph, ram, plan=plan,
                                      method="sc", backend="parallel",
                                      workers=1)
        assert serial.to_dict() == workers1.to_dict()
        for trace in (serial, workers1):
            assert RunTrace.from_json(trace.to_json()).to_dict() \
                == trace.to_dict()
