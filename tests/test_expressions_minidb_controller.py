"""Expression evaluation details and the Controller's MiniDB path."""

import numpy as np
import pytest

from repro.db.expressions import AggSpec, BinOp, Col, Lit, Not, Projection
from repro.db.table import Table
from repro.errors import SqlError, ValidationError


@pytest.fixture
def table() -> Table:
    return Table({
        "x": np.array([1, 2, 3]),
        "y": np.array([10.0, 20.0, 30.0]),
        "flag": np.array([True, False, True]),
    })


class TestExpressions:
    def test_literal_broadcast(self, table):
        values = Lit(7).evaluate(table)
        assert values.tolist() == [7, 7, 7]

    def test_arithmetic(self, table):
        expr = BinOp("/", BinOp("+", Col("y"), Lit(10.0)), Col("x"))
        assert expr.evaluate(table).tolist() == [20.0, 15.0, 40.0 / 3]

    def test_comparisons(self, table):
        assert BinOp("<=", Col("x"), Lit(2)).evaluate(table).tolist() == \
            [True, True, False]
        assert BinOp("!=", Col("x"), Lit(2)).evaluate(table).tolist() == \
            [True, False, True]

    def test_boolean_connectives_require_booleans(self, table):
        with pytest.raises(SqlError):
            BinOp("AND", Col("x"), Col("flag")).evaluate(table)
        with pytest.raises(SqlError):
            Not(Col("x")).evaluate(table)

    def test_not(self, table):
        assert Not(Col("flag")).evaluate(table).tolist() == \
            [False, True, False]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            BinOp("%", Col("x"), Lit(2))

    def test_columns_collection(self):
        expr = BinOp("+", BinOp("*", Col("a"), Col("b")), Lit(1))
        assert expr.columns() == {"a", "b"}
        assert AggSpec("SUM", Col("z"), "s").columns() == {"z"}
        assert AggSpec("COUNT", None, "n").columns() == set()
        assert Projection(Col("q"), "q").columns() == {"q"}

    def test_col_display(self):
        assert Col("c", "t").display() == "t.c"
        assert Col("c").display() == "c"


class TestControllerMiniDb:
    def test_refresh_on_minidb(self, tmp_path):
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.engine.controller import Controller

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(3)
        db.register_table("events", Table({
            "user": rng.integers(0, 30, 30_000),
            "amount": rng.uniform(0, 10, 30_000),
        }))
        workload = SqlWorkload(db=db, definitions=[
            MvDefinition("mv_filtered",
                         "SELECT user, amount FROM events "
                         "WHERE amount > 1"),
            MvDefinition("mv_by_user",
                         "SELECT user, SUM(amount) AS spend "
                         "FROM mv_filtered GROUP BY user"),
        ])
        workload.profile()

        trace = Controller().refresh_on_minidb(workload, 0.01,
                                               method="sc")
        assert trace.method == "sc"
        assert len(trace.nodes) == 2
        assert db.catalog.persisted("mv_by_user")
        result = db.table("mv_by_user")
        assert len(result) == 30
