"""Tests for the branch-and-bound MKP solver (the OR-Tools replacement)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.solver.brute import solve_mkp_brute_force
from repro.solver.greedy import greedy_mkp, greedy_mkp_by_density
from repro.solver.mkp import (
    BranchAndBoundSolver,
    MkpInstance,
    solve_mkp,
)


def random_instance(rng: random.Random, max_items: int = 12,
                    max_rows: int = 5) -> MkpInstance:
    n = rng.randint(1, max_items)
    k = rng.randint(0, max_rows)
    profits = [rng.uniform(0, 20) for _ in range(n)]
    weights = [
        [rng.choice([0.0, rng.uniform(0.1, 10.0)]) for _ in range(n)]
        for _ in range(k)
    ]
    capacities = [rng.uniform(1.0, 15.0) for _ in range(k)]
    return MkpInstance.from_lists(profits, weights, capacities)


class TestInstanceValidation:
    def test_shape_mismatches_rejected(self):
        with pytest.raises(ValidationError):
            MkpInstance.from_lists([1.0], [[1.0, 2.0]], [5.0])
        with pytest.raises(ValidationError):
            MkpInstance.from_lists([1.0], [[1.0]], [5.0, 5.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            MkpInstance.from_lists([-1.0], [[1.0]], [5.0])
        with pytest.raises(ValidationError):
            MkpInstance.from_lists([1.0], [[-1.0]], [5.0])
        with pytest.raises(ValidationError):
            MkpInstance.from_lists([1.0], [[1.0]], [-5.0])

    def test_feasibility_and_objective(self):
        inst = MkpInstance.from_lists([3.0, 4.0], [[2.0, 3.0]], [4.0])
        assert inst.is_feasible([0])
        assert not inst.is_feasible([0, 1])
        assert inst.objective([0, 1]) == 7.0


class TestSolverBasics:
    def test_empty_instance(self):
        solution = solve_mkp(MkpInstance.from_lists([], [], []))
        assert solution.selected == ()
        assert solution.objective == 0.0
        assert solution.optimal

    def test_unconstrained_takes_everything(self):
        inst = MkpInstance.from_lists([1.0, 2.0, 3.0], [], [])
        solution = solve_mkp(inst)
        assert set(solution.selected) == {0, 1, 2}

    def test_oversized_item_never_selected(self):
        inst = MkpInstance.from_lists([100.0, 1.0], [[50.0, 1.0]], [10.0])
        solution = solve_mkp(inst)
        assert 0 not in solution.selected

    def test_classic_knapsack(self):
        # profits/weights chosen so density-greedy is suboptimal
        inst = MkpInstance.from_lists(
            [60.0, 100.0, 120.0], [[10.0, 20.0, 30.0]], [50.0])
        solution = solve_mkp(inst, tolerance=0.0)
        assert solution.objective == pytest.approx(220.0)
        assert set(solution.selected) == {1, 2}

    def test_node_limit_returns_incumbent(self):
        rng = random.Random(11)
        inst = random_instance(rng, max_items=12, max_rows=4)
        solver = BranchAndBoundSolver(node_limit=1, tolerance=0.0,
                                      use_fractional_bound=False)
        solution = solver.solve(inst)
        assert inst.is_feasible(solution.selected)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            BranchAndBoundSolver(node_limit=0)
        with pytest.raises(ValidationError):
            BranchAndBoundSolver(tolerance=-0.1)


class TestAgainstBruteForce:
    def test_exact_mode_matches_brute_force(self):
        rng = random.Random(42)
        for _ in range(40):
            inst = random_instance(rng)
            exact = solve_mkp(inst, tolerance=0.0)
            reference = solve_mkp_brute_force(inst)
            assert exact.objective == pytest.approx(
                reference.objective, rel=1e-6)
            assert inst.is_feasible(exact.selected)

    def test_default_mode_within_one_percent(self):
        rng = random.Random(43)
        for _ in range(40):
            inst = random_instance(rng)
            approx = solve_mkp(inst)
            reference = solve_mkp_brute_force(inst)
            assert approx.objective >= reference.objective * 0.99 - 1e-9

    def test_weak_bound_still_exact(self):
        rng = random.Random(44)
        for _ in range(15):
            inst = random_instance(rng, max_items=10)
            weak = solve_mkp(inst, tolerance=0.0,
                             use_fractional_bound=False)
            reference = solve_mkp_brute_force(inst)
            assert weak.objective == pytest.approx(reference.objective,
                                                   rel=1e-6)


class TestGreedyHeuristics:
    def test_greedy_feasible(self):
        rng = random.Random(5)
        for _ in range(20):
            inst = random_instance(rng)
            assert inst.is_feasible(greedy_mkp(inst))
            assert inst.is_feasible(greedy_mkp_by_density(inst))

    def test_density_greedy_prefers_dense_items(self):
        inst = MkpInstance.from_lists(
            [10.0, 9.0], [[10.0, 1.0]], [10.0])
        assert greedy_mkp_by_density(inst) == [1]
        # index-order greedy takes item 0 first and fills the row
        assert greedy_mkp(inst) == [0]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_bnb_matches_brute_force(seed):
    rng = random.Random(seed)
    inst = random_instance(rng, max_items=10, max_rows=4)
    exact = solve_mkp(inst, tolerance=0.0)
    reference = solve_mkp_brute_force(inst)
    assert exact.objective == pytest.approx(reference.objective, rel=1e-6)
    assert inst.is_feasible(exact.selected)
