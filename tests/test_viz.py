"""Tests for ASCII charts and plan explanation (repro.viz)."""

import pytest

from repro.core.optimizer import optimize
from repro.core.plan import Plan
from repro.core.problem import ScProblem
from repro.core.speedup import compute_speedup_scores
from repro.errors import ValidationError
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile
from repro.viz.charts import bar_chart, grouped_bar_chart, line_chart
from repro.viz.explain import explain_plan, memory_profile_chart


class TestBarChart:
    def test_renders_all_labels_and_values(self):
        text = bar_chart({"no opt": 100.0, "sc": 60.0}, unit="s")
        assert "no opt" in text and "sc" in text
        assert "100" in text and "60" in text

    def test_longest_bar_for_max(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=20)
        line_a, line_b = text.splitlines()
        assert line_a.count("█") == 20
        assert line_b.count("█") == 10

    def test_zero_values_ok(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart({"a": -1.0})


class TestGroupedBarChart:
    def test_groups_and_global_scale(self):
        text = grouped_bar_chart({
            "io1": {"No opt": 300.0, "S/C": 180.0},
            "io2": {"No opt": 295.0, "S/C": 200.0},
        }, width=30)
        assert "io1:" in text and "io2:" in text
        # global max (300) gets the full width
        longest = max(line.count("█") for line in text.splitlines())
        assert longest == 30

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            grouped_bar_chart({})


class TestLineChart:
    def test_marks_and_legend(self):
        text = line_chart(["10", "100", "1000"],
                          {"TPC-DS": [1.4, 1.35, 1.3],
                           "TPC-DSp": [2.7, 2.6, 2.4]})
        assert "o=TPC-DS" in text
        assert "x=TPC-DSp" in text
        assert "1000" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            line_chart(["a", "b"], {"s": [1.0]})

    def test_single_point(self):
        text = line_chart(["x"], {"s": [5.0]})
        assert "o" in text


def small_problem() -> tuple[ScProblem, Plan]:
    graph = DependencyGraph()
    graph.add_node("a", size=1.0, compute_time=0.1)
    graph.add_node("big", size=50.0, compute_time=0.1)
    graph.add_node("b", size=0.5, compute_time=0.1)
    graph.add_node("sink", size=0.1, compute_time=0.1)
    graph.add_edge("a", "b")
    graph.add_edge("big", "sink")
    graph.add_edge("b", "sink")
    compute_speedup_scores(graph, DeviceProfile())
    problem = ScProblem(graph=graph, memory_budget=1.2)
    plan = optimize(problem, method="sc").plan
    return problem, plan


class TestExplainPlan:
    def test_flags_and_reasons_present(self):
        problem, plan = small_problem()
        text = explain_plan(problem, plan)
        assert "kept" in text
        assert "oversized" in text  # the 50 GB node

    def test_sink_has_no_benefit(self):
        problem, plan = small_problem()
        text = explain_plan(problem, plan)
        # 'sink' has no consumers → write-only score, still > 0; but a
        # zero-score case is exercised via an explicit plan below
        assert "sink" in text

    def test_profile_chart_budget_line(self):
        problem, plan = small_problem()
        chart = memory_profile_chart(problem, plan)
        assert "budget" in chart
        for node in plan.order:
            assert node in chart

    def test_mismatched_plan_rejected(self):
        problem, _ = small_problem()
        with pytest.raises(ValidationError):
            explain_plan(problem, Plan.unoptimized(["a"]))

    def test_crowded_out_lists_winners(self):
        graph = DependencyGraph()
        # two siblings compete for one slot under the same consumer
        graph.add_node("x", size=1.0, compute_time=0.1)
        graph.add_node("y", size=1.0, compute_time=0.1)
        graph.add_node("z", size=0.1, compute_time=0.1)
        graph.add_edge("x", "z")
        graph.add_edge("y", "z")
        compute_speedup_scores(graph, DeviceProfile())
        graph.node("x").score = 10.0
        graph.node("y").score = 1.0
        problem = ScProblem(graph=graph, memory_budget=1.0)
        plan = optimize(problem, method="sc").plan
        assert "x" in plan.flagged and "y" not in plan.flagged
        text = explain_plan(problem, plan, include_profile=False)
        y_line = next(line for line in text.splitlines()
                      if " y " in line and "size" in line)
        assert "crowded out" in y_line
        assert "x" in y_line

    def test_unoptimized_plan_explains_cleanly(self):
        problem, _ = small_problem()
        from repro.graph.topo import kahn_topological_order
        plan = Plan.unoptimized(kahn_topological_order(problem.graph))
        text = explain_plan(problem, plan)
        assert "0/4 nodes kept" in text
