"""The compressed-in-RAM rung (``ram-compressed`` tier), end to end.

Unit coverage of the PR's tentpole: rung placement rules and codec
resolution, the transfer-free economics (demotions pay encode only,
reads pay lazy decode only, no double charge on promote), the full-rung
demote bypass, the transfer-free branch of mid-run codec adaptation,
tier-aware planning with a rung, and the MiniDB backend's *real* rung
(in-memory encoded blobs, measured ratios feeding the feedback loop).
"""

import math

import pytest

from repro.core.problem import TierAwareBudget
from repro.engine.controller import Controller
from repro.errors import ValidationError
from repro.store import (
    NONE_CODEC,
    RAM_COMPRESSED,
    RAM_COMPRESSED_PROFILE,
    SPILL_CODECS,
    ZLIB1_CODEC,
    CodecAdaptConfig,
    SpillConfig,
    TierSpec,
    TieredLedger,
)

ZLIB1 = SPILL_CODECS["zlib1"]
SSD = SPILL_CODECS["none"]  # ssd spills raw by default


def _rung_ledger(ram=4.0, rung=2.0, ssd=8.0, **kwargs):
    """RAM -> ram-compressed rung -> SSD -> unbounded disk."""
    config_kwargs = {
        key: kwargs.pop(key)
        for key in ("policy", "codec", "adapt", "prefetch")
        if key in kwargs}
    spill = SpillConfig(
        tiers=(TierSpec(RAM_COMPRESSED, rung),
               TierSpec("ssd", ssd),
               TierSpec("disk")),
        **config_kwargs)
    return TieredLedger(ram, spill, **kwargs)


class TestRungConfig:
    def test_rung_must_be_the_hottest_tier(self):
        with pytest.raises(ValidationError, match="first"):
            SpillConfig(tiers=(TierSpec("ssd", 4.0),
                               TierSpec(RAM_COMPRESSED, 2.0)))

    def test_rung_needs_a_finite_budget(self):
        with pytest.raises(ValidationError, match="finite"):
            SpillConfig(tiers=(TierSpec(RAM_COMPRESSED),
                               TierSpec("disk")))

    def test_rung_profile_is_transfer_free(self):
        profile = TierSpec(RAM_COMPRESSED, 1.0).resolved_profile()
        assert profile is RAM_COMPRESSED_PROFILE
        assert math.isinf(profile.disk_read_bandwidth)
        assert math.isinf(profile.disk_write_bandwidth)
        assert profile.read_latency == 0.0

    def test_codec_resolution_precedence(self):
        spec = TierSpec(RAM_COMPRESSED, 1.0)
        # nothing configured: the rung's own zlib1 default
        assert spec.resolved_codec(NONE_CODEC) is ZLIB1_CODEC
        # a *compressing* config default outranks the name default
        zlib = SPILL_CODECS["zlib"]
        assert spec.resolved_codec(zlib) is zlib
        # an explicit per-tier codec outranks everything
        explicit = TierSpec(RAM_COMPRESSED, 1.0, codec="columnar")
        assert explicit.resolved_codec(zlib) is SPILL_CODECS["columnar"]
        # device tiers are untouched by the rung default
        assert TierSpec("ssd", 1.0).resolved_codec(NONE_CODEC) \
            is NONE_CODEC


class TestRungLedgerEconomics:
    def test_demote_charges_encode_only_and_stores_compressed(self):
        ledger = _rung_ledger()
        ledger.insert("x", 2.0, n_consumers=1)
        (charge,) = ledger.demote("x", now=0.0)
        # transfer legs are exactly 0: the whole price is the encode
        assert charge.seconds == pytest.approx(
            ZLIB1.encode_seconds_per_gb * 2.0)
        assert charge.dst == RAM_COMPRESSED
        # capacity is charged stored (compressed) bytes, logical is kept
        assert ledger.stored_size_of("x") == pytest.approx(2.0
                                                           / ZLIB1.ratio)
        assert ledger.size_of("x") == pytest.approx(2.0)
        assert ledger.tiers[1].ledger.usage == pytest.approx(
            2.0 / ZLIB1.ratio)
        assert ledger.usage == 0.0  # RAM fully released

    def test_read_pays_lazy_decode_only(self):
        ledger = _rung_ledger()
        ledger.insert("x", 2.0, n_consumers=1)
        ledger.demote("x", now=0.0)
        assert ledger.tier_read_seconds("x") == pytest.approx(
            ZLIB1.decode_seconds_per_gb * 2.0)

    def test_promote_does_not_recharge_the_decode(self):
        """The read path charges the decode once (tier_read_seconds);
        the promotion itself is just an in-memory create."""
        ledger = _rung_ledger()
        ledger.insert("x", 2.0, n_consumers=1)
        ledger.demote("x", now=0.0)
        charge = ledger.promote("x", now=0.0)
        assert charge is not None
        assert charge.seconds == pytest.approx(
            ledger.profile.create_time_memory(2.0))
        # back in RAM at logical size, the rung's stored bytes freed
        assert ledger.tier_of("x") == 0
        assert ledger.tiers[1].ledger.usage == 0.0
        assert ledger.size_of("x") == ledger.stored_size_of("x") == 2.0

    def test_rung_victims_are_selectable(self):
        ledger = _rung_ledger()
        ledger.insert("x", 2.0, n_consumers=1)
        ledger.demote("x", now=0.0)
        assert ledger.pick_victim(tier=1) == "x"
        assert ledger.pick_victim(tier=1,
                                  exclude=frozenset({"x"})) is None

    def test_cascade_off_the_rung_pays_decode_plus_device_write(self):
        ledger = _rung_ledger()
        ledger.insert("x", 2.0, n_consumers=1)
        ledger.demote("x", now=0.0)
        (charge,) = ledger.demote("x", now=0.0)  # rung -> ssd
        assert charge.src == RAM_COMPRESSED and charge.dst == "ssd"
        profile = TierSpec("ssd").resolved_profile()
        # ssd stores raw: stored == logical; the move re-reads the blob
        # (0 s transfer), decodes it, and writes raw bytes to the device
        assert charge.seconds == pytest.approx(
            ZLIB1.decode_seconds_per_gb * 2.0
            + 2.0 / profile.effective_write_bandwidth)
        assert ledger.stored_size_of("x") == pytest.approx(2.0)


class TestDemoteBypass:
    def test_full_rung_is_bypassed_when_the_cascade_costs_more(self):
        ledger = _rung_ledger(ram=10.0, rung=1.0, ssd=50.0)
        for node_id in ("a", "b"):
            ledger.insert(node_id, 2.0, n_consumers=1)
        ledger.demote("a", now=0.0)   # fills the rung (2/2.1 stored)
        assert ledger.tier_of("a") == 1
        # b's encode + displaced-decode + device write of the cascade
        # exceeds writing b to ssd directly: skip the rung
        (charge,) = ledger.demote("b", now=0.0)
        assert charge.dst == "ssd"
        assert ledger.tier_of("a") == 1  # undisturbed
        assert ledger.tier_of("b") == 2
        assert ledger.demote_bypass_count == 1

    def test_rung_with_room_is_never_bypassed(self):
        ledger = _rung_ledger(ram=10.0, rung=4.0, ssd=50.0)
        for node_id in ("a", "b"):
            ledger.insert(node_id, 2.0, n_consumers=1)
            ledger.demote(node_id, now=0.0)
        assert ledger.tier_of("a") == ledger.tier_of("b") == 1
        assert ledger.demote_bypass_count == 0

    def test_real_io_demotes_never_bypass(self):
        """Executors that move bytes themselves (stored_size measured)
        always go exactly one tier down — the MiniDB contract."""
        ledger = _rung_ledger(ram=10.0, rung=1.0, ssd=50.0)
        for node_id in ("a", "b"):
            ledger.insert(node_id, 2.0, n_consumers=1)
        ledger.demote("a", now=0.0, stored_size=0.9)
        charges = ledger.demote("b", now=0.0, stored_size=0.9)
        # b displaced a into ssd instead of skipping the rung
        assert charges[-1].dst == RAM_COMPRESSED
        assert ledger.tier_of("b") == 1
        assert ledger.tier_of("a") == 2
        assert ledger.demote_bypass_count == 0


class TestRungAdaptation:
    def _adapted(self, compressibility):
        ledger = _rung_ledger(adapt=CodecAdaptConfig(samples=1))
        ledger.set_compressibility({"x": compressibility})
        ledger.insert("x", 2.0, n_consumers=1)
        ledger.demote("x", now=0.0)
        return ledger

    def test_incompressible_rung_drops_its_codec(self):
        """A rung storing raw-sized blobs is pure overhead: adaptation
        must switch the codec off even though the rung's own transfer
        legs are free (the saving is priced at the tier below)."""
        ledger = self._adapted(0.0)
        record = ledger.codec_adapt[RAM_COMPRESSED]
        assert record["observed_ratio"] == pytest.approx(1.0)
        assert record["repriced"] and record["switched_to"] == "none"
        assert ledger.current_codec(1).name == "none"
        assert ledger.priced_ratio(1) == 1.0

    def test_highly_compressible_rung_keeps_its_codec(self):
        ledger = self._adapted(2.0)
        record = ledger.codec_adapt[RAM_COMPRESSED]
        assert record["observed_ratio"] > ZLIB1.ratio
        assert record["repriced"] and record["switched_to"] is None
        assert ledger.current_codec(1).name == "zlib1"
        assert ledger.priced_ratio(1) == pytest.approx(
            record["observed_ratio"])


class TestRungPlanning:
    def test_rung_capacity_scales_by_ratio_at_codec_only_penalty(self):
        spill = SpillConfig(tiers=(TierSpec(RAM_COMPRESSED, 1.0),
                                   TierSpec("ssd", 4.0),
                                   TierSpec("disk")))
        budget = TierAwareBudget.from_spill(2.0, spill)
        rung, ssd, _ = budget.tiers
        assert rung.capacity == pytest.approx(ZLIB1.ratio)
        assert rung.penalty_seconds_per_gb == pytest.approx(
            ZLIB1.encode_seconds_per_gb + ZLIB1.decode_seconds_per_gb)
        # the rung is the cheapest rung below RAM, so it earns the best
        # discount and the effective budget beats the rung-free hierarchy
        assert rung.discount > ssd.discount > 0.0
        without = TierAwareBudget.from_spill(2.0, SpillConfig(
            tiers=(TierSpec("ssd", 4.0), TierSpec("disk"))))
        assert budget.effective_budget(clamp=10.0) > \
            without.effective_budget(clamp=10.0) + 0.5


class TestMiniDbRung:
    @pytest.fixture
    def workload(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.db.table import Table

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(3)
        n = 80_000
        db.register_table("events", Table({
            "user": rng.integers(0, 50, n),
            "amount": rng.uniform(0, 10, n),
        }))
        return SqlWorkload(db=db, definitions=[
            MvDefinition("mv_a", "SELECT user, amount FROM events "
                                 "WHERE amount > 1"),
            MvDefinition("mv_b", "SELECT user, amount FROM mv_a "
                                 "WHERE amount > 2"),
            MvDefinition("mv_c", "SELECT user, SUM(amount) AS s "
                                 "FROM mv_a GROUP BY user"),
            MvDefinition("mv_d", "SELECT user, amount FROM mv_b "
                                 "WHERE amount > 3"),
            MvDefinition("mv_e", "SELECT user, SUM(amount) AS t "
                                 "FROM mv_b GROUP BY user"),
        ])

    def test_real_rung_compresses_in_memory_and_stays_correct(
            self, workload, tmp_path):
        import numpy as np

        profiled = workload.profile()
        plan = Controller().plan(profiled, 1000.0, method="sc")
        sizes = {n: profiled.size_of(n) for n in profiled.nodes()}
        ram = 1.1 * max(sizes[n] for n in plan.flagged)
        controller = Controller(spill_dir=str(tmp_path / "spill"),
                                ram_compressed_gb=ram)
        trace = controller.refresh_on_minidb(workload, ram, plan=plan)
        report = trace.extras["tiered_store"]
        assert trace.peak_catalog_usage <= ram + 1e-9
        rung = report["tiers"][1]
        assert rung["name"] == RAM_COMPRESSED
        assert report["tiers"][2]["name"] == "spill-disk"
        # the rung hosted real encoded blobs within its stored budget...
        assert rung["observed"]["spill_in_count"] > 0
        assert rung["peak"] <= ram + 1e-9
        # ...measured genuinely compressed (real zlib1 on real tables)
        assert rung["observed"]["observed_ratio"] > 1.2
        # measured wall clocks feed the per-tier feedback observations
        from repro.feedback.observe import CostFeedback

        observation = CostFeedback.from_trace(trace).observation(
            RAM_COMPRESSED)
        assert observation is not None
        assert observation.observed_ratio == pytest.approx(
            rung["observed"]["observed_ratio"])
        # every MV durable and numerically correct despite the rung
        db = workload.db
        for name in profiled.nodes():
            assert db.catalog.persisted(name)
        spend = db.table("mv_c").columns()["s"]
        raw = db.table("events").columns()
        expected = raw["amount"][raw["amount"] > 1].sum()
        assert np.isclose(spend.sum(), expected)

    def test_rung_requires_a_spill_dir(self, workload):
        workload.profile()
        with pytest.raises(ValidationError, match="spill_dir"):
            Controller(ram_compressed_gb=1.0).refresh_on_minidb(
                workload, 1000.0)
