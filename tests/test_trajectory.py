"""Edge cases of the ``BENCH_*.json`` trajectory validator + gate.

Complements the happy-path coverage in ``test_obs.py``: single
snapshots, duplicate dates, tracked metrics appearing/disappearing
between snapshots, and the module's CLI exit-code contract (0 clean /
1 on regression or schema problems / 2 on usage errors) asserted
through a real subprocess — the exact interface CI calls.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench.trajectory import (
    DEFAULT_NOISE,
    check_files,
    regression_gate,
    tracked_metrics,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


def snapshot(seconds_by_metric: dict, experiment: str = "edge") -> dict:
    return {
        "experiment": experiment,
        "title": "edge-case snapshot",
        "headers": ["arm", "s"],
        "rows": [[key, value] for key, value in
                 sorted(seconds_by_metric.items())],
        "data": {"totals": {key: {"p": value} for key, value in
                            seconds_by_metric.items()}},
    }


def write(path: pathlib.Path, payload: dict) -> str:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestSingleSnapshot:
    def test_one_file_validates_with_no_gating(self, tmp_path):
        path = write(tmp_path / "BENCH_2026-01-01.json",
                     snapshot({"a": 1.0}))
        assert check_files([path]) == []

    def test_one_undated_file_still_schema_checked(self, tmp_path):
        path = write(tmp_path / "whatever.json", snapshot({"a": 1.0}))
        assert check_files([path]) == []
        bad = write(tmp_path / "bad.json", {"experiment": "x"})
        assert any("missing required key" in problem
                   for problem in check_files([bad]))


class TestDuplicateDates:
    @staticmethod
    def _two(tmp_path, payload_a, payload_b) -> tuple[str, str]:
        os.makedirs(tmp_path / "a")
        os.makedirs(tmp_path / "b")
        return (write(tmp_path / "a" / "BENCH_2026-01-01.json",
                      payload_a),
                write(tmp_path / "b" / "BENCH_2026-01-01.json",
                      payload_b))

    def test_same_date_same_experiment_flagged(self, tmp_path):
        a, b = self._two(tmp_path, snapshot({"a": 1.0}),
                         snapshot({"a": 1.0}))
        problems = check_files([a, b])
        assert len(problems) == 1
        assert "duplicate snapshot date" in problems[0]
        assert a in problems[0] and b in problems[0]

    def test_same_date_different_experiments_allowed(self, tmp_path):
        a, b = self._two(tmp_path,
                         snapshot({"a": 1.0}, experiment="one"),
                         snapshot({"a": 9.0}, experiment="two"))
        assert check_files([a, b]) == []


class TestMetricChurn:
    def test_metric_appearing_is_not_a_regression(self, tmp_path):
        old = write(tmp_path / "BENCH_2026-01-01.json",
                    snapshot({"a": 1.0}))
        new = write(tmp_path / "BENCH_2026-01-02.json",
                    snapshot({"a": 1.0, "b": 99.0}))
        assert check_files([old, new]) == []

    def test_metric_disappearing_is_not_a_regression(self, tmp_path):
        old = write(tmp_path / "BENCH_2026-01-01.json",
                    snapshot({"a": 1.0, "b": 1.0}))
        new = write(tmp_path / "BENCH_2026-01-02.json",
                    snapshot({"a": 1.0}))
        assert check_files([old, new]) == []

    def test_surviving_metric_still_gated_through_churn(self, tmp_path):
        old = write(tmp_path / "BENCH_2026-01-01.json",
                    snapshot({"a": 1.0, "gone": 1.0}))
        new = write(tmp_path / "BENCH_2026-01-02.json",
                    snapshot({"a": 2.0, "fresh": 1.0}))
        problems = check_files([old, new])
        assert len(problems) == 1
        assert "totals.a.p" in problems[0]

    def test_scalar_and_nested_arm_shapes_both_tracked(self):
        payload = snapshot({"a": 1.0})
        payload["data"]["totals"]["flat"] = 3.0
        assert tracked_metrics(payload) == {"totals.a.p": 1.0,
                                            "totals.flat": 3.0}

    def test_zero_baseline_skipped(self):
        old, new = snapshot({"a": 0.0}), snapshot({"a": 5.0})
        assert regression_gate(old, new, noise=DEFAULT_NOISE) == []


class TestCliExitCodes:
    """The subprocess contract CI relies on."""

    def run_cli(self, *argv: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
            else "")
        return subprocess.run(
            [sys.executable, "-m", "repro.bench.trajectory", *argv],
            capture_output=True, text=True, env=env, timeout=60)

    def test_exit_zero_on_clean_snapshots(self, tmp_path):
        old = write(tmp_path / "BENCH_2026-01-01.json",
                    snapshot({"a": 10.0}))
        new = write(tmp_path / "BENCH_2026-01-02.json",
                    snapshot({"a": 10.1}))
        proc = self.run_cli(old, new)
        assert proc.returncode == 0, proc.stderr
        assert "2 snapshots valid" in proc.stdout

    def test_exit_one_on_regression(self, tmp_path):
        old = write(tmp_path / "BENCH_2026-01-01.json",
                    snapshot({"a": 10.0}))
        new = write(tmp_path / "BENCH_2026-01-02.json",
                    snapshot({"a": 20.0}))
        proc = self.run_cli(old, new)
        assert proc.returncode == 1
        assert "totals.a.p" in proc.stderr

    def test_exit_one_on_schema_error(self, tmp_path):
        bad = write(tmp_path / "BENCH_2026-01-01.json",
                    {"experiment": "x"})
        proc = self.run_cli(bad)
        assert proc.returncode == 1
        assert "missing required key" in proc.stderr

    def test_exit_two_without_arguments(self):
        proc = self.run_cli()
        assert proc.returncode == 2
        assert "usage" in proc.stderr

    def test_exit_two_on_unreadable_file(self, tmp_path):
        missing = str(tmp_path / "BENCH_2026-01-01.json")
        proc = self.run_cli(missing)
        assert proc.returncode == 2
        assert "cannot read" in proc.stderr

    def test_exit_two_on_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_2026-01-01.json"
        path.write_text("{not json", encoding="utf-8")
        proc = self.run_cli(str(path))
        assert proc.returncode == 2
        assert "cannot read" in proc.stderr
