"""Tests for the layered DAG generator (Figure 14's sweep axes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.graph.generators import (
    LayeredDagConfig,
    generate_layered_dag,
    generate_random_dag,
)
from repro.graph.stats import dag_stats


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            LayeredDagConfig(n_nodes=0)
        with pytest.raises(ValidationError):
            LayeredDagConfig(height_width_ratio=0)
        with pytest.raises(ValidationError):
            LayeredDagConfig(max_outdegree=-1)
        with pytest.raises(ValidationError):
            LayeredDagConfig(stage_stdev=-0.1)
        with pytest.raises(ValidationError):
            LayeredDagConfig(forward_bias=1.5)


class TestLayeredDag:
    def test_exact_node_count(self):
        for n in (1, 2, 7, 25, 100):
            graph = generate_layered_dag(LayeredDagConfig(n_nodes=n),
                                         seed=1)
            assert graph.n == n

    def test_acyclic_and_connected_interior(self):
        graph = generate_layered_dag(LayeredDagConfig(n_nodes=60), seed=2)
        graph.validate()
        stages = {v: graph.node(v).meta["stage"] for v in graph.nodes()}
        for node in graph.nodes():
            if stages[node] > 0:
                assert graph.in_degree(node) >= 1, node

    def test_edges_point_to_later_stages(self):
        graph = generate_layered_dag(LayeredDagConfig(n_nodes=50), seed=3)
        for producer, consumer in graph.edges():
            assert graph.node(producer).meta["stage"] < \
                graph.node(consumer).meta["stage"]

    def test_height_width_ratio_direction(self):
        thin = generate_layered_dag(
            LayeredDagConfig(n_nodes=64, height_width_ratio=4.0), seed=4)
        wide = generate_layered_dag(
            LayeredDagConfig(n_nodes=64, height_width_ratio=0.25), seed=4)
        assert dag_stats(thin).height > dag_stats(wide).height
        assert dag_stats(thin).width < dag_stats(wide).width

    def test_outdegree_respected_modulo_orphan_repair(self):
        config = LayeredDagConfig(n_nodes=50, max_outdegree=2)
        graph = generate_layered_dag(config, seed=5)
        # orphan repair can add one extra edge per node at most
        assert max(graph.out_degree(v) for v in graph.nodes()) <= \
            config.max_outdegree + 1

    def test_deterministic_per_seed(self):
        a = generate_layered_dag(LayeredDagConfig(n_nodes=30), seed=9)
        b = generate_layered_dag(LayeredDagConfig(n_nodes=30), seed=9)
        assert a.nodes() == b.nodes()
        assert a.edges() == b.edges()
        c = generate_layered_dag(LayeredDagConfig(n_nodes=30), seed=10)
        assert a.edges() != c.edges()


class TestRandomDag:
    def test_bounds(self):
        with pytest.raises(ValidationError):
            generate_random_dag(0)
        with pytest.raises(ValidationError):
            generate_random_dag(5, edge_probability=1.5)

    def test_acyclic(self):
        graph = generate_random_dag(30, edge_probability=0.3, seed=7)
        graph.validate()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 80), ratio=st.floats(0.25, 4.0),
       outdeg=st.integers(0, 6), stdev=st.floats(0.0, 4.0),
       seed=st.integers(0, 999))
def test_property_generator_always_valid(n, ratio, outdeg, stdev, seed):
    config = LayeredDagConfig(n_nodes=n, height_width_ratio=ratio,
                              max_outdegree=outdeg, stage_stdev=stdev)
    graph = generate_layered_dag(config, seed=seed)
    assert graph.n == n
    graph.validate()
