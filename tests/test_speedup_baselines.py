"""Tests for speedup scores and the selection baselines."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.residency import is_feasible
from repro.core.selection_baselines import (
    greedy_selection,
    random_selection,
    ratio_selection,
)
from repro.core.speedup import compute_speedup_scores, speedup_score
from repro.graph.dag import DependencyGraph
from repro.graph.topo import kahn_topological_order
from repro.metadata.costmodel import DeviceProfile
from tests.conftest import make_random_problem


class TestSpeedupScore:
    def test_formula_components(self):
        cost = DeviceProfile()
        size = 1.0
        expected = (
            2 * (cost.read_time_disk(size) - cost.read_time_memory(size))
            + (cost.write_time_disk(size) - cost.create_time_memory(size))
        )
        assert speedup_score(size, 2, cost) == pytest.approx(expected)

    def test_more_consumers_more_score(self):
        cost = DeviceProfile()
        assert speedup_score(1.0, 3, cost) > speedup_score(1.0, 1, cost)

    def test_sink_node_still_saves_write(self):
        cost = DeviceProfile()
        assert speedup_score(1.0, 0, cost) > 0

    def test_zero_size_zero_score(self):
        assert speedup_score(0.0, 5, DeviceProfile()) == pytest.approx(
            5 * DeviceProfile().read_latency)

    def test_compute_scores_annotates_graph(self, diamond_graph):
        scores = compute_speedup_scores(diamond_graph, DeviceProfile())
        for node_id in diamond_graph.nodes():
            assert diamond_graph.score_of(node_id) == scores[node_id]
            assert scores[node_id] > 0
        # a has 2 consumers and the largest size: biggest score
        assert max(scores, key=scores.get) == "a"


class TestSelectionBaselines:
    def test_greedy_takes_first_fitting(self):
        from repro.core.problem import ScProblem

        problem = ScProblem.from_tables(
            edges=[("a", "b"), ("b", "c")],
            sizes={"a": 8.0, "b": 8.0, "c": 1.0},
            scores={"a": 1.0, "b": 100.0, "c": 1.0},
            memory_budget=10.0)
        order = ["a", "b", "c"]
        flagged = greedy_selection(problem, order)
        # a (first in order) blocks b, despite b's far higher score
        assert "a" in flagged
        assert "b" not in flagged

    def test_ratio_prefers_score_density(self):
        from repro.core.problem import ScProblem

        problem = ScProblem.from_tables(
            edges=[("a", "b"), ("b", "c")],
            sizes={"a": 8.0, "b": 8.0, "c": 1.0},
            scores={"a": 1.0, "b": 100.0, "c": 1.0},
            memory_budget=10.0)
        order = ["a", "b", "c"]
        flagged = ratio_selection(problem, order)
        assert "b" in flagged
        assert "a" not in flagged

    def test_random_is_seeded(self):
        problem = make_random_problem(7, n_nodes=20)
        order = kahn_topological_order(problem.graph)
        a = random_selection(problem, order, rng=random.Random(3))
        b = random_selection(problem, order, rng=random.Random(3))
        assert a == b


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000),
       budget_fraction=st.floats(0.0, 1.0))
def test_property_baselines_always_feasible(seed, budget_fraction):
    problem = make_random_problem(seed, n_nodes=15,
                                  budget_fraction=budget_fraction)
    order = kahn_topological_order(problem.graph)
    for flagged in (
        greedy_selection(problem, order),
        random_selection(problem, order, rng=random.Random(seed)),
        ratio_selection(problem, order),
    ):
        assert is_feasible(problem.graph, order, flagged,
                           problem.memory_budget)
