"""Tests for signed delta tables (repro.ivm.delta)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.table import Table
from repro.errors import ValidationError
from repro.ivm.delta import (
    SignedDelta,
    WEIGHT_COLUMN,
    apply_delta,
    concat_deltas,
)


def make_table(**cols) -> Table:
    return Table.from_dict(cols)


class TestConstruction:
    def test_from_inserts(self):
        delta = SignedDelta.from_inserts(make_table(a=[1, 2], b=[3.0, 4.0]))
        assert delta.n_changes == 2
        assert delta.net_rows == 2
        assert list(delta.weights) == [1, 1]

    def test_from_deletes(self):
        delta = SignedDelta.from_deletes(make_table(a=[1]))
        assert delta.net_rows == -1
        assert delta.n_changes == 1

    def test_from_changes(self):
        delta = SignedDelta.from_changes(make_table(a=[1, 2]),
                                         make_table(a=[3]))
        assert delta.net_rows == 1
        assert delta.n_changes == 3

    def test_weight_column_reserved(self):
        with pytest.raises(ValidationError):
            SignedDelta.from_inserts(
                Table.from_dict({WEIGHT_COLUMN: [1]}))

    def test_missing_weight_column_rejected(self):
        with pytest.raises(ValidationError):
            SignedDelta(make_table(a=[1]))

    def test_float_weights_rejected(self):
        table = make_table(a=[1]).with_column(
            WEIGHT_COLUMN, np.array([1.5]))
        with pytest.raises(ValidationError):
            SignedDelta(table)

    def test_empty(self):
        delta = SignedDelta.empty(make_table(a=[1], b=["x"]))
        assert delta.is_empty
        assert delta.data_columns == ["a", "b"]


class TestConsolidate:
    def test_merges_duplicates(self):
        delta = SignedDelta.from_inserts(make_table(a=[1, 1, 2]))
        merged = delta.consolidate()
        assert len(merged.table) == 2
        rows = {r["a"]: r[WEIGHT_COLUMN]
                for r in merged.table.to_pylist()}
        assert rows == {1: 2, 2: 1}

    def test_cancels_insert_delete_pairs(self):
        delta = SignedDelta.from_changes(make_table(a=[1, 2]),
                                         make_table(a=[1]))
        merged = delta.consolidate()
        assert len(merged.table) == 1
        assert merged.table.to_pylist()[0]["a"] == 2

    def test_empty_result(self):
        delta = SignedDelta.from_changes(make_table(a=[5]),
                                         make_table(a=[5]))
        assert delta.consolidate().is_empty

    def test_mixed_dtypes(self):
        delta = SignedDelta.from_inserts(
            make_table(k=["x", "x", "y"], v=[1, 1, 2]))
        merged = delta.consolidate()
        assert len(merged.table) == 2

    def test_single_zero_weight_row(self):
        table = make_table(a=[1]).with_column(
            WEIGHT_COLUMN, np.array([0], dtype=np.int64))
        assert SignedDelta(table).consolidate().is_empty


class TestApplyDelta:
    def test_insert(self):
        table = make_table(a=[1, 2])
        out = apply_delta(table, SignedDelta.from_inserts(make_table(a=[3])))
        assert sorted(out["a"]) == [1, 2, 3]

    def test_delete(self):
        table = make_table(a=[1, 2, 3])
        out = apply_delta(table, SignedDelta.from_deletes(make_table(a=[2])))
        assert sorted(out["a"]) == [1, 3]

    def test_delete_one_duplicate_copy(self):
        table = make_table(a=[7, 7, 8])
        out = apply_delta(table, SignedDelta.from_deletes(make_table(a=[7])))
        assert sorted(out["a"]) == [7, 8]

    def test_delete_missing_row_raises(self):
        with pytest.raises(ValidationError):
            apply_delta(make_table(a=[1]),
                        SignedDelta.from_deletes(make_table(a=[9])))

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValidationError):
            apply_delta(make_table(a=[1]),
                        SignedDelta.from_inserts(make_table(b=[1])))

    def test_empty_delta_is_identity(self):
        table = make_table(a=[1, 2])
        out = apply_delta(table, SignedDelta.empty(table))
        assert out.equals(table)

    def test_column_order_preserved(self):
        table = make_table(b=[1], a=[2])
        out = apply_delta(table,
                          SignedDelta.from_inserts(make_table(a=[4], b=[3])))
        assert out.column_names == ["b", "a"]

    def test_inverse_roundtrip(self):
        table = make_table(a=[1, 2, 3], v=[10.0, 20.0, 30.0])
        delta = SignedDelta.from_changes(make_table(a=[4], v=[40.0]),
                                         make_table(a=[1], v=[10.0]))
        forward = apply_delta(table, delta)
        back = apply_delta(forward, delta.inverted())
        assert sorted(back["a"]) == [1, 2, 3]


class TestHelpers:
    def test_scaled(self):
        delta = SignedDelta.from_inserts(make_table(a=[1]))
        assert delta.scaled(3).weights[0] == 3
        assert delta.scaled(0).is_empty

    def test_concat(self):
        a = SignedDelta.from_inserts(make_table(a=[1]))
        b = SignedDelta.from_deletes(make_table(a=[2]))
        both = concat_deltas([a, b])
        assert both.n_changes == 2

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValidationError):
            concat_deltas([])

    def test_data_strips_weight(self):
        delta = SignedDelta.from_inserts(make_table(a=[1]))
        assert WEIGHT_COLUMN not in delta.data()


@st.composite
def _tables_and_deltas(draw):
    """A base table plus a legal delta against it."""
    n = draw(st.integers(min_value=0, max_value=12))
    keys = draw(st.lists(st.integers(min_value=0, max_value=5),
                         min_size=n, max_size=n))
    vals = draw(st.lists(st.integers(min_value=-3, max_value=3),
                         min_size=n, max_size=n))
    table = Table.from_dict({"k": np.array(keys, dtype=np.int64),
                             "v": np.array(vals, dtype=np.int64)})
    n_ins = draw(st.integers(min_value=0, max_value=6))
    ins_k = draw(st.lists(st.integers(min_value=0, max_value=5),
                          min_size=n_ins, max_size=n_ins))
    ins_v = draw(st.lists(st.integers(min_value=-3, max_value=3),
                          min_size=n_ins, max_size=n_ins))
    inserts = Table.from_dict({"k": np.array(ins_k, dtype=np.int64),
                               "v": np.array(ins_v, dtype=np.int64)})
    # deletes drawn from existing rows so the delta is always legal
    del_count = draw(st.integers(min_value=0, max_value=n))
    del_rows = sorted(draw(st.permutations(list(range(n))))[:del_count]) \
        if n else []
    deletes = table.take(np.array(del_rows, dtype=np.int64)) if del_rows \
        else table.head(0)
    return table, inserts, deletes


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(_tables_and_deltas())
    def test_apply_matches_multiset_semantics(self, case):
        table, inserts, deletes = case
        delta = SignedDelta.from_changes(inserts, deletes)
        result = apply_delta(table, delta)
        expected = sorted(map(repr, Table.concat(
            [table, inserts]).to_pylist()))
        for row in deletes.to_pylist():
            expected.remove(repr(row))
        assert sorted(map(repr, result.to_pylist())) == expected

    @settings(max_examples=60, deadline=None)
    @given(_tables_and_deltas())
    def test_consolidate_preserves_application(self, case):
        table, inserts, deletes = case
        delta = SignedDelta.from_changes(inserts, deletes)
        raw = apply_delta(table, delta)
        merged = apply_delta(table, delta.consolidate(), consolidated=True)
        assert sorted(map(repr, raw.to_pylist())) == \
            sorted(map(repr, merged.to_pylist()))

    @settings(max_examples=40, deadline=None)
    @given(_tables_and_deltas())
    def test_net_rows_matches_length_change(self, case):
        table, inserts, deletes = case
        delta = SignedDelta.from_changes(inserts, deletes)
        result = apply_delta(table, delta)
        assert len(result) == len(table) + delta.net_rows
