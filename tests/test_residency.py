"""Tests for residency intervals and memory accounting (paper §IV)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.residency import (
    average_memory_usage,
    is_feasible,
    memory_profile,
    peak_memory_usage,
    residency_intervals,
    residency_sets,
)
from repro.errors import GraphError
from repro.graph.topo import kahn_topological_order
from tests.conftest import make_fig7_problem, make_random_problem


class TestIntervals:
    def test_diamond(self, diamond_graph):
        intervals = residency_intervals(diamond_graph,
                                        ["a", "b", "c", "d"])
        assert intervals["a"] == (0, 2)   # last consumer c at position 2
        assert intervals["b"] == (1, 3)
        assert intervals["c"] == (2, 3)
        assert intervals["d"] == (3, 3)   # sink: own position only

    def test_order_must_cover_graph(self, diamond_graph):
        with pytest.raises(GraphError):
            residency_intervals(diamond_graph, ["a", "b"])


class TestFigure7:
    """The paper's worked example: order decides what fits."""

    def test_bad_order_limits_flagging(self):
        problem = make_fig7_problem()
        graph = problem.graph
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        # v1 resident 0..3 (v4 last), v3 resident 2..4: both -> 200 > 100
        assert peak_memory_usage(graph, tau1, {"v1", "v3"}) == 200
        assert not is_feasible(graph, tau1, {"v1", "v3"}, 100)
        # the paper's τ1 best: v1, v5, v6 = 120 score, feasible
        assert is_feasible(graph, tau1, {"v1", "v5", "v6"}, 100)

    def test_good_order_fits_both_big_nodes(self):
        problem = make_fig7_problem()
        graph = problem.graph
        tau2 = ["v1", "v2", "v4", "v3", "v5", "v6"]
        assert peak_memory_usage(graph, tau2, {"v1", "v3"}) == 100
        assert is_feasible(graph, tau2, {"v1", "v3", "v6"}, 100)

    def test_profile_matches_peak(self):
        problem = make_fig7_problem()
        graph = problem.graph
        tau2 = ["v1", "v2", "v4", "v3", "v5", "v6"]
        flagged = {"v1", "v3", "v6"}
        profile = memory_profile(graph, tau2, flagged)
        assert max(profile) == peak_memory_usage(graph, tau2, flagged)
        assert profile == [100, 100, 100, 100, 100, 10]


class TestAverageMemoryUsage:
    def test_unit_example(self, chain_graph):
        order = ["a", "b", "c", "d"]
        # a resident 0..1 -> duration 1; each node size 1
        assert average_memory_usage(chain_graph, order, {"a"}) == \
            pytest.approx(1 / 4)
        assert average_memory_usage(chain_graph, order, set()) == 0.0

    def test_sink_contributes_zero(self, chain_graph):
        order = ["a", "b", "c", "d"]
        assert average_memory_usage(chain_graph, order, {"d"}) == 0.0

    def test_longer_residency_costs_more(self, diamond_graph):
        good = ["a", "b", "c", "d"]
        # same graph; flagged b resident 1..3 either way, but flagged a is
        # resident longer when its consumers are pushed apart — compare two
        # flag sets instead.
        assert average_memory_usage(diamond_graph, good, {"a"}) < \
            average_memory_usage(diamond_graph, good, {"a", "b"})


class TestResidencySets:
    def test_exclusion(self, diamond_graph):
        order = ["a", "b", "c", "d"]
        sets = residency_sets(diamond_graph, order, exclude={"a"})
        assert all("a" not in s for s in sets)

    def test_diamond_sets(self, diamond_graph):
        order = ["a", "b", "c", "d"]
        sets = residency_sets(diamond_graph, order)
        assert sets[0] == {"a"}
        assert sets[1] == {"a", "b"}
        assert sets[2] == {"a", "b", "c"}
        assert sets[3] == {"b", "c", "d"}


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_profile_consistent_with_peak_and_average(seed):
    problem = make_random_problem(seed, n_nodes=15)
    graph = problem.graph
    order = kahn_topological_order(graph)
    rng = random.Random(seed)
    flagged = {v for v in graph.nodes() if rng.random() < 0.5}

    profile = memory_profile(graph, order, flagged)
    assert max(profile, default=0.0) == pytest.approx(
        peak_memory_usage(graph, order, flagged))

    # profile integral equals avg * n + one size per flagged node (the
    # interval is inclusive of the execution position itself)
    total = sum(profile)
    expected = (average_memory_usage(graph, order, flagged) * graph.n
                + sum(graph.size_of(v) for v in flagged))
    assert total == pytest.approx(expected)
