"""Tests for GetConstraints (Algorithm 1's pruning)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constraints import get_constraints
from repro.core.problem import ScProblem
from repro.core.residency import residency_sets
from repro.graph.topo import kahn_topological_order
from tests.conftest import make_fig7_problem, make_random_problem


def naive_constraint_sets(problem, order):
    """Reference implementation: all V_i, then filter trivially/maximal."""
    exclude = problem.excluded_nodes()
    raw = residency_sets(problem.graph, order, exclude=exclude)
    nontrivial = [
        s for s in set(raw)
        if sum(problem.size_of(v) for v in s) > problem.memory_budget + 1e-9
    ]
    return {
        s for s in nontrivial
        if not any(s < other for other in nontrivial)
    }


class TestExclusion:
    def test_oversized_and_zero_score_nodes(self):
        problem = ScProblem.from_tables(
            edges=[("big", "mid"), ("mid", "zero")],
            sizes={"big": 100.0, "mid": 5.0, "zero": 1.0},
            scores={"big": 10.0, "mid": 10.0, "zero": 0.0},
            memory_budget=10.0)
        constraints = get_constraints(problem,
                                      ["big", "mid", "zero"])
        assert "big" in constraints.excluded
        assert "zero" in constraints.excluded
        assert constraints.candidates == {"mid"}


class TestPruning:
    def test_trivial_sets_dropped(self, diamond_graph):
        problem = ScProblem(graph=diamond_graph, memory_budget=1000.0)
        constraints = get_constraints(
            problem, kahn_topological_order(diamond_graph))
        assert constraints.sets == ()  # everything fits: all trivial
        # every candidate is then a free node
        assert constraints.free_nodes == constraints.candidates

    def test_fig7_constraints(self):
        problem = make_fig7_problem()
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        constraints = get_constraints(problem, tau1)
        # the binding set contains both 100GB nodes
        assert any({"v1", "v3"} <= s for s in constraints.sets)
        for s in constraints.sets:
            assert sum(problem.size_of(v) for v in s) > 100

    def test_maximality(self):
        problem = make_fig7_problem()
        tau1 = ["v1", "v2", "v3", "v4", "v5", "v6"]
        constraints = get_constraints(problem, tau1)
        for a in constraints.sets:
            for b in constraints.sets:
                assert not (a < b), (a, b)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000),
       budget_fraction=st.floats(0.05, 0.9))
def test_property_matches_naive_reference(seed, budget_fraction):
    problem = make_random_problem(seed, n_nodes=14,
                                  budget_fraction=budget_fraction)
    order = kahn_topological_order(problem.graph)
    fast = set(get_constraints(problem, order).sets)
    reference = naive_constraint_sets(problem, order)
    assert fast == reference


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_free_nodes_are_safe(seed):
    """Flagging every free node can never violate any retained set."""
    problem = make_random_problem(seed, n_nodes=14, budget_fraction=0.3)
    order = kahn_topological_order(problem.graph)
    constraints = get_constraints(problem, order)
    for s in constraints.sets:
        free_in_set = constraints.free_nodes & s
        assert not free_in_set
