"""Tests for MA-DFS (paper §V-B, Figure 8)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.madfs import actual_memory_consumption, ma_dfs_order
from repro.core.residency import average_memory_usage, peak_memory_usage
from repro.graph.topo import dfs_topological_order, is_topological_order
from tests.conftest import (
    make_fig7_problem,
    make_fig8_problem,
    make_random_problem,
)


class TestActualMemoryConsumption:
    def test_flagged_nodes_weigh_their_size(self, diamond_graph):
        weights = actual_memory_consumption(diamond_graph, {"b", "c"})
        assert weights == {"a": 0.0, "b": 2.0, "c": 3.0, "d": 0.0}


class TestFigure7:
    def test_madfs_enables_both_big_nodes(self):
        problem = make_fig7_problem()
        graph = problem.graph
        order = ma_dfs_order(graph, {"v1", "v3"})
        assert is_topological_order(graph, order)
        # the cheap leaf v4 must run before the flagged v3 so v1 releases
        assert order.index("v4") < order.index("v3")
        assert peak_memory_usage(graph, order, {"v1", "v3"}) <= 100


class TestFigure8:
    def test_unflagged_branch_scheduled_before_flagged(self):
        problem = make_fig8_problem()
        graph = problem.graph
        flagged = {"v1", "v3", "v4", "v5"}
        order = ma_dfs_order(graph, flagged)
        assert is_topological_order(graph, order)
        # the paper's tie-break: v2 (unflagged, actual 0) before v3
        # (flagged, actual 80)
        assert order.index("v2") < order.index("v3")

    def test_beats_random_tie_break_on_average(self):
        problem = make_fig8_problem()
        graph = problem.graph
        flagged = {"v1", "v3", "v4", "v5"}
        madfs_cost = average_memory_usage(
            graph, ma_dfs_order(graph, flagged), flagged)
        random_costs = [
            average_memory_usage(
                graph,
                dfs_topological_order(graph, rng=random.Random(seed)),
                flagged)
            for seed in range(12)
        ]
        assert madfs_cost <= min(random_costs) + 1e-9


class TestDeterminism:
    def test_same_inputs_same_order(self):
        problem = make_random_problem(3, n_nodes=25)
        flagged = set(list(problem.graph.nodes())[::2])
        assert ma_dfs_order(problem.graph, flagged) == \
            ma_dfs_order(problem.graph, flagged)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), flag_fraction=st.floats(0.0, 1.0))
def test_property_always_valid_topological_order(seed, flag_fraction):
    problem = make_random_problem(seed, n_nodes=18)
    graph = problem.graph
    rng = random.Random(seed)
    flagged = {v for v in graph.nodes() if rng.random() < flag_fraction}
    order = ma_dfs_order(graph, flagged)
    assert is_topological_order(graph, order)


def test_statistical_beats_random_dfs_on_average_memory():
    """MA-DFS is a heuristic: it can lose on individual adversarial
    instances, but across a population of random workloads it must beat
    random-tie-break DFS both in aggregate cost and in win rate.
    """
    total_madfs = 0.0
    total_random = 0.0
    wins = 0
    instances = 0
    for seed in range(40):
        problem = make_random_problem(seed, n_nodes=15)
        graph = problem.graph
        rng = random.Random(seed)
        flagged = {v for v in graph.nodes() if rng.random() < 0.4}
        if not flagged:
            continue
        instances += 1
        madfs_cost = average_memory_usage(
            graph, ma_dfs_order(graph, flagged), flagged)
        random_costs = [
            average_memory_usage(
                graph, dfs_topological_order(graph, rng=random.Random(s)),
                flagged)
            for s in range(6)
        ]
        mean_random = sum(random_costs) / len(random_costs)
        total_madfs += madfs_cost
        total_random += mean_random
        if madfs_cost <= mean_random + 1e-9:
            wins += 1
    assert instances >= 30
    assert total_madfs < total_random
    assert wins / instances > 0.7, (wins, instances)
