"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.db.expressions import BinOp, Col, Lit
from repro.db.sql import parse_select, tokenize
from repro.errors import SqlError


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Item from T")
        assert tokens[0].kind == "keyword" and tokens[0].value == "SELECT"
        assert tokens[1].kind == "ident" and tokens[1].value == "Item"

    def test_numbers_and_strings(self):
        tokens = tokenize("1 2.5 'hello world'")
        assert [t.kind for t in tokens[:-1]] == ["number", "number",
                                                 "string"]

    def test_not_equals_variants(self):
        assert tokenize("a != b")[1].value == "!="
        assert tokenize("a <> b")[1].value == "!="

    def test_unknown_character(self):
        with pytest.raises(SqlError) as excinfo:
            tokenize("a ; b")
        assert excinfo.value.position == 2


class TestParserStructure:
    def test_basic_select(self):
        stmt = parse_select("SELECT a, b AS bee FROM t")
        assert stmt.from_table == "t"
        assert [item.alias for item in stmt.projections] == ["a", "bee"]
        assert not stmt.star

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.star

    def test_joins(self):
        stmt = parse_select(
            "SELECT a FROM t JOIN u ON t.k = u.k JOIN v ON u.j = v.j")
        assert stmt.referenced_tables() == ["t", "u", "v"]
        assert stmt.joins[0].left == Col("k", "t")
        assert stmt.joins[1].right == Col("j", "v")

    def test_where_group_order_limit(self):
        stmt = parse_select(
            "SELECT a, SUM(b) AS s FROM t WHERE a > 3 AND b < 2 "
            "GROUP BY a ORDER BY s DESC, a LIMIT 7")
        assert stmt.where is not None
        assert stmt.group_by == [Col("a")]
        assert stmt.order_by == [("s", False), ("a", True)]
        assert stmt.limit == 7

    def test_aggregates(self):
        stmt = parse_select(
            "SELECT COUNT(*), SUM(x * 2) AS double_x, AVG(y) FROM t")
        aliases = [item.alias for item in stmt.projections]
        assert aliases[0] == "count_star"
        assert aliases[1] == "double_x"
        assert aliases[2] == "avg_y"
        assert stmt.projections[0].agg.arg is None

    def test_implicit_alias(self):
        stmt = parse_select("SELECT a + 1 FROM t")
        assert stmt.projections[0].alias == "col0"


class TestExpressionPrecedence:
    def test_arithmetic_before_comparison(self):
        stmt = parse_select("SELECT a FROM t WHERE a + 1 * 2 > 3")
        where = stmt.where
        assert isinstance(where, BinOp) and where.op == ">"
        left = where.left
        assert left.op == "+"
        assert left.right.op == "*"

    def test_and_binds_tighter_than_or(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parentheses_override(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"

    def test_unary_minus(self):
        stmt = parse_select("SELECT a FROM t WHERE a > -5")
        right = stmt.where.right
        assert isinstance(right, BinOp) and right.op == "-"
        assert right.left == Lit(0)

    def test_string_literal(self):
        stmt = parse_select("SELECT a FROM t WHERE name = 'bob'")
        assert stmt.where.right == Lit("bob")


class TestParserErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM t JOIN",
        "SELECT a FROM t JOIN u ON a",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP a",
        "SELECT a FROM t LIMIT x",
        "SELECT a FROM t extra garbage (",
        "SELECT COUNT( FROM t",
    ])
    def test_malformed_statements(self, sql):
        with pytest.raises(SqlError):
            parse_select(sql)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT a FROM t )")
