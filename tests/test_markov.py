"""Tests for the operation Markov chain."""

import random

import pytest

from repro.errors import ValidationError
from repro.graph.markov import END, MarkovChain
from repro.workloads.corpus import OPERATION_SEQUENCES


class TestFit:
    def test_requires_nonempty_input(self):
        with pytest.raises(ValidationError):
            MarkovChain().fit([])
        with pytest.raises(ValidationError):
            MarkovChain().fit([[], []])

    def test_states_collected(self):
        chain = MarkovChain().fit([["A", "B"], ["B", "C"]])
        assert chain.states == ["A", "B", "C"]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError):
            MarkovChain(alpha=-1.0)


class TestProbabilities:
    def test_distribution_sums_to_one(self):
        chain = MarkovChain().fit(OPERATION_SEQUENCES)
        for state in chain.states:
            probs = chain.transition_probabilities(state)
            assert sum(probs.values()) == pytest.approx(1.0)
            assert all(p > 0 for p in probs.values())  # smoothing

    def test_observed_transitions_dominate(self):
        chain = MarkovChain(alpha=0.1).fit([["A", "B"]] * 10)
        probs = chain.transition_probabilities("A")
        assert probs["B"] > 0.9

    def test_unfitted_chain_raises(self):
        with pytest.raises(ValidationError):
            MarkovChain().transition_probabilities("A")


class TestSampling:
    def test_sample_sequence_terminates(self):
        chain = MarkovChain().fit(OPERATION_SEQUENCES)
        rng = random.Random(0)
        for _ in range(20):
            sequence = chain.sample_sequence(rng, max_length=16)
            assert len(sequence) <= 16
            assert END not in sequence

    def test_sample_operation_never_returns_end(self):
        chain = MarkovChain().fit(OPERATION_SEQUENCES)
        rng = random.Random(1)
        for _ in range(200):
            op = chain.sample_operation("AGG", rng)
            assert op != END
            assert op in chain.states

    def test_start_state_produces_scan_heavy_ops(self):
        chain = MarkovChain(alpha=0.01).fit(OPERATION_SEQUENCES)
        rng = random.Random(2)
        first_ops = [chain.sample_operation(None, rng) for _ in range(300)]
        assert first_ops.count("SCAN") > 250  # corpus always starts SCAN
