"""Tests for the on-disk format, catalog, and the real plan runner."""

import numpy as np
import pytest

from repro.core.plan import Plan
from repro.db import storage_format
from repro.db.catalog import DatabaseCatalog
from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
from repro.db.runner import run_workload
from repro.db.table import Table
from repro.errors import CatalogError, ExecutionError


@pytest.fixture
def table() -> Table:
    rng = np.random.default_rng(1)
    return Table({
        "a": rng.integers(0, 100, 5000),
        "b": rng.uniform(0, 1, 5000),
    })


class TestStorageFormat:
    def test_round_trip(self, tmp_path, table):
        size = storage_format.write_table(table, str(tmp_path), "t")
        assert size > 0
        restored = storage_format.read_table(str(tmp_path), "t")
        assert restored.equals(table)

    def test_compression_shrinks(self, tmp_path):
        compressible = Table({"a": np.zeros(100_000, dtype=np.int64)})
        compressed = storage_format.write_table(
            compressible, str(tmp_path), "c", compress=True)
        raw = storage_format.write_table(
            compressible, str(tmp_path), "r", compress=False)
        assert compressed < raw / 10

    def test_missing_table(self, tmp_path):
        with pytest.raises(ExecutionError):
            storage_format.read_table(str(tmp_path), "ghost")
        assert storage_format.on_disk_size(str(tmp_path), "ghost") == 0

    def test_delete(self, tmp_path, table):
        storage_format.write_table(table, str(tmp_path), "t")
        storage_format.delete_table(str(tmp_path), "t")
        assert storage_format.on_disk_size(str(tmp_path), "t") == 0
        storage_format.delete_table(str(tmp_path), "t")  # idempotent


class TestDatabaseCatalog:
    def test_lifecycle(self, tmp_path, table):
        catalog = DatabaseCatalog(str(tmp_path))
        catalog.put_memory("m", table)
        assert catalog.in_memory("m")
        assert catalog.memory_bytes() == table.nbytes
        catalog.persist("m", table)
        assert catalog.persisted("m")
        catalog.evict_memory("m")
        assert not catalog.in_memory("m")
        assert catalog.persisted("m")
        catalog.drop("m")
        assert not catalog.exists("m")

    def test_discovers_existing_files(self, tmp_path, table):
        storage_format.write_table(table, str(tmp_path), "preexisting")
        catalog = DatabaseCatalog(str(tmp_path))
        assert catalog.persisted("preexisting")

    def test_errors(self, tmp_path, table):
        catalog = DatabaseCatalog(str(tmp_path))
        with pytest.raises(CatalogError):
            catalog.get_memory("ghost")
        with pytest.raises(CatalogError):
            catalog.evict_memory("ghost")
        catalog.put_memory("m", table)
        with pytest.raises(CatalogError):
            catalog.put_memory("m", table)


def build_workload(tmp_path) -> SqlWorkload:
    db = MiniDB(str(tmp_path / "wh"))
    rng = np.random.default_rng(2)
    n = 60_000
    db.register_table("facts", Table({
        "k": rng.integers(0, 50, n),
        "v": rng.uniform(0, 100, n),
    }))
    return SqlWorkload(db=db, definitions=[
        MvDefinition("mv_base", "SELECT k, v FROM facts WHERE v > 10"),
        MvDefinition("mv_agg",
                     "SELECT k, SUM(v) AS total FROM mv_base GROUP BY k"),
        MvDefinition("mv_top",
                     "SELECT k, total FROM mv_agg WHERE total > 0"),
        MvDefinition("mv_other",
                     "SELECT k, AVG(v) AS mean_v FROM mv_base GROUP BY k"),
    ])


class TestRunWorkload:
    def test_all_mvs_persisted_and_budget_respected(self, tmp_path):
        workload = build_workload(tmp_path)
        graph = workload.profile()
        budget = 2 * max(graph.sizes().values())
        plan = Plan.make(
            ["mv_base", "mv_agg", "mv_top", "mv_other"],
            {"mv_base", "mv_agg"})
        trace = run_workload(workload, plan, budget, method="sc")
        db = workload.db
        for definition in workload.definitions:
            assert db.catalog.persisted(definition.name)
            assert not db.catalog.in_memory(definition.name)
        assert trace.peak_catalog_usage <= budget + 1e-9
        assert trace.end_to_end_time > 0
        assert len(trace.nodes) == 4

    def test_results_match_unoptimized_run(self, tmp_path):
        workload = build_workload(tmp_path)
        graph = workload.profile()
        order = ["mv_base", "mv_agg", "mv_top", "mv_other"]

        run_workload(workload, Plan.unoptimized(order), 0.0)
        reference = {
            name: workload.db.table(name)
            for name in order
        }
        for name in order:
            workload.db.drop(name)

        budget = 2 * max(graph.sizes().values())
        run_workload(workload, Plan.make(order, {"mv_base", "mv_agg"}),
                     budget)
        for name in order:
            assert workload.db.table(name).equals(reference[name]), name

    def test_unknown_mv_rejected(self, tmp_path):
        workload = build_workload(tmp_path)
        with pytest.raises(ExecutionError):
            run_workload(workload,
                         Plan.unoptimized(["ghost", "mv_base", "mv_agg",
                                           "mv_top"]),
                         0.0)

    def test_zero_budget_spills_everything(self, tmp_path):
        workload = build_workload(tmp_path)
        order = ["mv_base", "mv_agg", "mv_top", "mv_other"]
        trace = run_workload(workload,
                             Plan.make(order, {"mv_base"}), 0.0)
        assert trace.peak_catalog_usage == 0.0
        assert trace.nodes[0].write > 0  # spilled, blocking write
