"""Randomized invariant harness for the tiered ledger (fuzz-style).

Seeded generator of random DAGs x tier configs x codecs x policies x
feedback knobs, executed on the serial simulator *and* the parallel
backend at ``workers=1``.  A checking subclass of ``TieredLedger`` is
monkeypatched into both backends so that after **every public
mutation** the core accounting invariants are re-verified in place:

* RAM is charged logical bytes (``size_of == stored_size_of`` in RAM)
  and each tier's usage equals the sum of its entries' stored bytes;
* no ledger exceeds its budget and no balance ever goes negative;
* ``size_of`` / ``stored_size_of`` stay consistent (stored never
  exceeds logical — realized ratios are clamped to >= 1);
* spill / promote counters match the demotion / promotion episodes the
  harness independently tallies;
* an entry is resident in exactly one tier.

On top of the per-step checks, the two backends' traces must be
bit-equal (full ``to_dict`` equality, extras included) and JSON
round-trip losslessly.

Runs under the ``random_invariants`` marker; CI gives it a dedicated
job with a fixed seed matrix (``REPRO_INVARIANT_SEEDS``, default
``0,1,2``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.exec.lockorder import (
    LockOrderError,
    LockOrderRegistry,
    TrackedRLock,
)
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import RunTrace
from repro.store.config import (
    RAM_COMPRESSED,
    CodecAdaptConfig,
    SpillConfig,
    TierSpec,
)
from repro.store.tiered import TieredLedger
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

SEEDS = [int(text) for text in
         os.environ.get("REPRO_INVARIANT_SEEDS", "0,1,2").split(",")]

#: random DAG/config cases drawn per seed
CASES_PER_SEED = 5

_EPS = 1e-6


class LedgerInvariantError(AssertionError):
    """A core accounting invariant broke mid-run."""


class CheckedLedger(TieredLedger):
    """TieredLedger that re-verifies the ledger invariants after every
    public mutation, and independently tallies migration episodes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.observed_demotions = 0
        self.observed_promotions = 0
        self.checks_run = 0
        # lock-order audit (the dynamic cross-check for REP003): every
        # nested acquire across the RAM lock and the per-tier ledger
        # locks records an edge; _check asserts the graph stays acyclic
        self.lock_order = LockOrderRegistry()
        self._lock = TrackedRLock("ram", self.lock_order, self._lock)
        for index, tier in enumerate(self.tiers[1:], start=1):
            tier.ledger._lock = TrackedRLock(
                f"tier{index}:{tier.name}", self.lock_order,
                tier.ledger._lock)

    # -- independent episode tallies ----------------------------------
    def _demote_locked(self, node_id, now, stored_override=None):
        charges = super()._demote_locked(node_id, now,
                                         stored_override=stored_override)
        if charges is not None:
            self.observed_demotions += 1
        return charges

    def _promote_locked(self, node_id, now):
        charge = super()._promote_locked(node_id, now)
        if charge is not None:
            self.observed_promotions += 1
        return charge

    # -- per-step verification ----------------------------------------
    def _check(self) -> None:
        with self._lock:
            self.checks_run += 1
            seen: dict[str, int] = {}
            # RAM: usage equals the sum of entry sizes, logical == stored
            ram_sum = sum(e.size for e in self._entries.values())
            self._expect(abs(self.usage - ram_sum - self._charged) <= _EPS,
                         f"RAM usage {self.usage} != entry sum {ram_sum}")
            for node_id in self._entries:
                seen[node_id] = seen.get(node_id, 0) + 1
                self._expect(
                    self.size_of(node_id) == self.stored_size_of(node_id),
                    f"RAM entry {node_id} logical != stored")
            for index, tier in enumerate(self.tiers):
                ledger = tier.ledger
                self._expect(ledger.usage >= -_EPS,
                             f"tier {tier.name} usage negative")
                self._expect(ledger.usage <= ledger.budget + _EPS,
                             f"tier {tier.name} over budget: "
                             f"{ledger.usage} > {ledger.budget}")
                if index == 0:
                    continue
                entries = self._tier_entries(index)
                tier_sum = sum(ledger.size_of(n) for n in entries)
                self._expect(abs(ledger.usage - tier_sum) <= _EPS,
                             f"tier {tier.name} usage {ledger.usage} != "
                             f"stored sum {tier_sum}")
                for node_id in entries:
                    seen[node_id] = seen.get(node_id, 0) + 1
                    logical = self.size_of(node_id)
                    stored = self.stored_size_of(node_id)
                    self._expect(
                        stored <= logical + _EPS,
                        f"{node_id}: stored {stored} > logical {logical}")
                    self._expect(stored >= 0.0 and logical >= 0.0,
                                 f"{node_id}: negative size")
            for node_id, count in seen.items():
                self._expect(count == 1,
                             f"{node_id} resident in {count} tiers")
            # counters: monotone, non-negative, episode-consistent
            # (prefetch promotions count on the prefetch counter, not
            # promote_count — together they cover every up-move)
            self._expect(
                self.spill_count == self.observed_demotions,
                f"spill_count {self.spill_count} != observed demotion "
                f"episodes {self.observed_demotions}")
            self._expect(
                self.promote_count + self.prefetch_count
                == self.observed_promotions,
                f"promote_count {self.promote_count} + prefetch_count "
                f"{self.prefetch_count} != observed promotion episodes "
                f"{self.observed_promotions}")
            for name in ("spill_bytes", "promote_bytes",
                         "spill_stored_bytes", "prefetch_bytes",
                         "prefetch_hidden_seconds", "stall_seconds",
                         "avoided_spill_seconds"):
                self._expect(getattr(self, name) >= 0.0,
                             f"{name} went negative")
            self._expect(0 <= self.demote_bypass_count <= self.spill_count,
                         "demote_bypass_count out of range")
            # per-tier telemetry (spill-in/read/promote episodes, the
            # decode-aware read counters included) never goes negative
            for index, telemetry in enumerate(self._telemetry):
                for field in vars(telemetry):
                    self._expect(getattr(telemetry, field) >= 0,
                                 f"tier {index} telemetry {field} "
                                 f"went negative")
            # lock ordering: no pair of ledger locks ever nested in
            # opposite directions across the run so far
            self.lock_order.assert_acyclic()

    @staticmethod
    def _expect(condition: bool, message: str) -> None:
        if not condition:
            raise LedgerInvariantError(message)


def _checked(method_name):
    """Wrap a public mutator so every call ends in a full check."""
    original = getattr(TieredLedger, method_name)

    def wrapper(self, *args, **kwargs):
        result = original(self, *args, **kwargs)
        self._check()
        return result

    wrapper.__name__ = method_name
    return wrapper


for _name in ("demote", "promote", "prefetch", "try_make_room",
              "insert", "consumer_done", "materialized",
              "force_release", "adopt"):
    setattr(CheckedLedger, _name, _checked(_name))


# spill_insert's direct-placement path increments spill_count without a
# _demote_locked call; observe it by diffing around the original body
_original_spill_insert = TieredLedger.spill_insert


def _spill_insert_checked(self, *args, **kwargs):
    before = self.spill_count - self.observed_demotions
    result = _original_spill_insert(self, *args, **kwargs)
    tier_idx, _ = result
    if tier_idx > 0:
        self.observed_demotions += 1  # direct placement episode
    drift = (self.spill_count - self.observed_demotions) - before
    if drift:
        raise LedgerInvariantError(
            f"spill_insert changed spill_count by an unobserved "
            f"{drift} episodes")
    self._check()
    return result


CheckedLedger.spill_insert = _spill_insert_checked


def _random_case(rng: random.Random):
    """One random (graph, plan, ram, SpillConfig) scenario."""
    n_nodes = rng.choice([12, 18, 24])
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(
            n_nodes=n_nodes,
            height_width_ratio=rng.choice([0.5, 1.0, 2.0])),
        seed=rng.randrange(10_000))
    codec = rng.choice(["none", "zlib"])
    if codec != "none" and rng.random() < 0.7:
        for node_id in graph.nodes():
            graph.node(node_id).meta["compressibility"] = rng.choice(
                [0.0, 0.3, 1.0, 2.0])
    budget = rng.uniform(0.2, 0.4) * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=rng.randrange(100)).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    if peak <= 0:
        return None
    ram = rng.uniform(0.25, 0.8) * peak
    tiers = [TierSpec("ssd", rng.uniform(0.3, 0.8) * peak)]
    if rng.random() < 0.8:
        tiers.append(TierSpec(
            "disk",
            codec=rng.choice([None, "none", "zlib"])))
    else:
        tiers[0] = TierSpec("ssd")  # single unbounded tier
    if rng.random() < 0.5:
        # compressed-in-RAM rung above the device tiers: finite stored
        # budget, its own codec half the time (else the zlib1 default)
        tiers.insert(0, TierSpec(
            RAM_COMPRESSED, rng.uniform(0.1, 0.4) * peak,
            codec=rng.choice([None, "zlib1", "columnar"])))
    spill = SpillConfig(
        tiers=tuple(tiers),
        policy=rng.choice(["cost", "lru", "largest"]),
        promote=rng.random() < 0.8,
        arbitrate=rng.random() < 0.8,
        codec=codec,
        prefetch=rng.random() < 0.5,
        adapt=(CodecAdaptConfig(samples=rng.choice([1, 2, 4]),
                                threshold=rng.choice([0.1, 0.25]))
               if rng.random() < 0.5 else None))
    return graph, plan, ram, spill


@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_ledger_invariants(seed, monkeypatch):
    """Random scenarios: per-step ledger invariants hold on both
    backends and the serial / ``workers=1`` traces stay bit-equal."""
    monkeypatch.setattr("repro.store.tiered.TieredLedger", CheckedLedger)
    rng = random.Random(seed)
    cases = spills = 0
    while cases < CASES_PER_SEED:
        case = _random_case(rng)
        if case is None:
            continue
        graph, plan, ram, spill = case
        cases += 1
        controller = Controller(options=SimulatorOptions(spill=spill))
        serial = controller.refresh(graph, ram, plan=plan, method="sc")
        workers1 = controller.refresh(graph, ram, plan=plan, method="sc",
                                      backend="parallel", workers=1)
        # zero invariant violations is implicit (a violation raises);
        # make sure the checker actually ran, and ran on both backends
        assert serial.extras["tiered_store"] is not None
        spills += serial.extras["tiered_store"]["spill_count"]
        # bit-equal traces, every field and every extras key
        assert serial.to_dict() == workers1.to_dict()
        # lossless JSON round-trip on a randomized trace
        assert RunTrace.from_json(serial.to_json()).to_dict() \
            == serial.to_dict()
    assert cases == CASES_PER_SEED
    assert spills > 0, "random scenarios never spilled; harness too weak"


@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_checked_ledger_actually_checks(seed, monkeypatch):
    """Meta-test: the harness's checker runs and can fail.

    Guards against the monkeypatch silently stopping to bite (e.g. a
    backend importing the ledger differently), which would turn the
    whole harness into a vacuous pass.
    """
    monkeypatch.setattr("repro.store.tiered.TieredLedger", CheckedLedger)
    rng = random.Random(seed)
    case = None
    while case is None:
        case = _random_case(rng)
    graph, plan, ram, spill = case
    simulator_options = SimulatorOptions(spill=spill)
    from repro.engine.simulator import RefreshSimulator

    state = RefreshSimulator(options=simulator_options).begin(
        ram, graph=graph)
    ledger = state.catalog
    assert isinstance(ledger, CheckedLedger)
    ledger.insert("probe", min(ram, 1.0), n_consumers=1)
    assert ledger.checks_run > 0
    # corrupt the accounting behind the checker's back: must raise
    ledger._usage += 17.0
    with pytest.raises(LedgerInvariantError):
        ledger._check()


# -- lock-order assertion (fast, runs in tier-1, no marker) -----------

def test_lock_order_consistent_nesting_passes():
    registry = LockOrderRegistry()
    a = TrackedRLock("a", registry)
    b = TrackedRLock("b", registry)
    for _ in range(3):
        with a:
            with a:  # re-entrant: no self-edge
                with b:
                    pass
    assert registry.edges() == {("a", "b"): 3}
    registry.assert_acyclic()


def test_lock_order_inversion_detected():
    registry = LockOrderRegistry()
    a = TrackedRLock("a", registry)
    b = TrackedRLock("b", registry)
    with a:
        with b:
            pass
    registry.assert_acyclic()  # one direction only: still fine
    with b:
        with a:  # the ABBA inversion (no deadlock: same thread)
            pass
    with pytest.raises(LockOrderError) as excinfo:
        registry.assert_acyclic()
    assert "a" in str(excinfo.value) and "b" in str(excinfo.value)


def test_checked_ledger_audits_lock_order():
    """A real demotion nests the RAM lock over the tier ledger's lock;
    the CheckedLedger must record that edge and stay acyclic."""
    from repro.store.config import SpillConfig, TierSpec

    ledger = CheckedLedger(
        budget=2.0,
        config=SpillConfig(tiers=(TierSpec("ssd", 10.0),)),
        charge_io=False)
    ledger.insert("a", 1.5, n_consumers=1)
    ledger.demote("a", now=0.0)
    edges = ledger.lock_order.edges()
    assert any(src == "ram" for (src, dst) in edges), edges
    ledger.lock_order.assert_acyclic()
