"""Randomized invariant harness for the tiered ledger (fuzz-style).

Seeded generator of random DAGs x tier configs x codecs x policies x
feedback knobs, executed on the serial simulator *and* the parallel
backend at ``workers=1``.  A checking subclass of ``TieredLedger`` is
monkeypatched into both backends so that after **every public
mutation** the core accounting invariants are re-verified in place:

* RAM is charged logical bytes (``size_of == stored_size_of`` in RAM)
  and each tier's usage equals the sum of its entries' stored bytes;
* no ledger exceeds its budget and no balance ever goes negative;
* ``size_of`` / ``stored_size_of`` stay consistent (stored never
  exceeds logical — realized ratios are clamped to >= 1);
* spill / promote counters match the demotion / promotion episodes the
  harness independently tallies;
* an entry is resident in exactly one tier.

On top of the per-step checks, the two backends' traces must be
bit-equal (full ``to_dict`` equality, extras included) and JSON
round-trip losslessly.

Runs under the ``random_invariants`` marker; CI gives it a dedicated
job with a fixed seed matrix (``REPRO_INVARIANT_SEEDS``, default
``0,1,2``).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.exec.lockorder import (
    LockOrderError,
    LockOrderRegistry,
    TrackedRLock,
)
from repro.engine.simulator import SimulatorOptions
from repro.engine.trace import RunTrace
from repro.store.config import (
    RAM_COMPRESSED,
    CodecAdaptConfig,
    SpillConfig,
    TierSpec,
)
from repro.store.tiered import TieredLedger
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

SEEDS = [int(text) for text in
         os.environ.get("REPRO_INVARIANT_SEEDS", "0,1,2").split(",")]

#: random DAG/config cases drawn per seed
CASES_PER_SEED = 5

_EPS = 1e-6


class LedgerInvariantError(AssertionError):
    """A core accounting invariant broke mid-run."""


class CheckedLedger(TieredLedger):
    """TieredLedger that re-verifies the ledger invariants after every
    public mutation, and independently tallies migration episodes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.observed_demotions = 0
        self.observed_promotions = 0
        self.checks_run = 0
        # lock-order audit (the dynamic cross-check for REP003): every
        # nested acquire across the RAM lock and the per-tier ledger
        # locks records an edge; _check asserts the graph stays acyclic
        self.lock_order = LockOrderRegistry()
        self._lock = TrackedRLock("ram", self.lock_order, self._lock)
        for index, tier in enumerate(self.tiers[1:], start=1):
            tier.ledger._lock = TrackedRLock(
                f"tier{index}:{tier.name}", self.lock_order,
                tier.ledger._lock)

    # -- independent episode tallies ----------------------------------
    def _demote_locked(self, node_id, now, stored_override=None):
        charges = super()._demote_locked(node_id, now,
                                         stored_override=stored_override)
        if charges is not None:
            self.observed_demotions += 1
        return charges

    def _promote_locked(self, node_id, now):
        charge = super()._promote_locked(node_id, now)
        if charge is not None:
            self.observed_promotions += 1
        return charge

    # -- per-step verification ----------------------------------------
    def _check(self) -> None:
        with self._lock:
            self.checks_run += 1
            seen: dict[str, int] = {}
            # RAM: usage equals the sum of entry sizes, logical == stored
            ram_sum = sum(e.size for e in self._entries.values())
            self._expect(abs(self.usage - ram_sum - self._charged) <= _EPS,
                         f"RAM usage {self.usage} != entry sum {ram_sum}")
            for node_id in self._entries:
                seen[node_id] = seen.get(node_id, 0) + 1
                self._expect(
                    self.size_of(node_id) == self.stored_size_of(node_id),
                    f"RAM entry {node_id} logical != stored")
            for index, tier in enumerate(self.tiers):
                ledger = tier.ledger
                self._expect(ledger.usage >= -_EPS,
                             f"tier {tier.name} usage negative")
                self._expect(ledger.usage <= ledger.budget + _EPS,
                             f"tier {tier.name} over budget: "
                             f"{ledger.usage} > {ledger.budget}")
                if index == 0:
                    continue
                entries = self._tier_entries(index)
                tier_sum = sum(ledger.size_of(n) for n in entries)
                self._expect(abs(ledger.usage - tier_sum) <= _EPS,
                             f"tier {tier.name} usage {ledger.usage} != "
                             f"stored sum {tier_sum}")
                for node_id in entries:
                    seen[node_id] = seen.get(node_id, 0) + 1
                    logical = self.size_of(node_id)
                    stored = self.stored_size_of(node_id)
                    self._expect(
                        stored <= logical + _EPS,
                        f"{node_id}: stored {stored} > logical {logical}")
                    self._expect(stored >= 0.0 and logical >= 0.0,
                                 f"{node_id}: negative size")
            for node_id, count in seen.items():
                self._expect(count == 1,
                             f"{node_id} resident in {count} tiers")
            # tenant accounting (multi-tenant serving): every balance
            # non-negative, and the sum of tenant usages equals the sum
            # of owned RAM entries — tenant books never drift from the
            # ledger's own tier-0 accounting
            owned_sum = sum(
                entry.size for node_id, entry in self._entries.items()
                if self._owners.get(node_id) is not None)
            tenant_sum = 0.0
            for name, account in self._tenant_accounts.items():
                self._expect(account.usage >= -_EPS,
                             f"tenant {name} usage negative: "
                             f"{account.usage}")
                tenant_sum += account.usage
            self._expect(abs(tenant_sum - owned_sum) <= _EPS,
                         f"tenant usage sum {tenant_sum} != owned RAM "
                         f"entry sum {owned_sum}")
            # counters: monotone, non-negative, episode-consistent
            # (prefetch promotions count on the prefetch counter, not
            # promote_count — together they cover every up-move)
            self._expect(
                self.spill_count == self.observed_demotions,
                f"spill_count {self.spill_count} != observed demotion "
                f"episodes {self.observed_demotions}")
            self._expect(
                self.promote_count + self.prefetch_count
                == self.observed_promotions,
                f"promote_count {self.promote_count} + prefetch_count "
                f"{self.prefetch_count} != observed promotion episodes "
                f"{self.observed_promotions}")
            for name in ("spill_bytes", "promote_bytes",
                         "spill_stored_bytes", "prefetch_bytes",
                         "prefetch_hidden_seconds", "stall_seconds",
                         "avoided_spill_seconds"):
                self._expect(getattr(self, name) >= 0.0,
                             f"{name} went negative")
            self._expect(0 <= self.demote_bypass_count <= self.spill_count,
                         "demote_bypass_count out of range")
            # per-tier telemetry (spill-in/read/promote episodes, the
            # decode-aware read counters included) never goes negative
            for index, telemetry in enumerate(self._telemetry):
                for field in vars(telemetry):
                    self._expect(getattr(telemetry, field) >= 0,
                                 f"tier {index} telemetry {field} "
                                 f"went negative")
            # lock ordering: no pair of ledger locks ever nested in
            # opposite directions across the run so far
            self.lock_order.assert_acyclic()

    @staticmethod
    def _expect(condition: bool, message: str) -> None:
        if not condition:
            raise LedgerInvariantError(message)


def _checked(method_name):
    """Wrap a public mutator so every call ends in a full check."""
    original = getattr(TieredLedger, method_name)

    def wrapper(self, *args, **kwargs):
        result = original(self, *args, **kwargs)
        self._check()
        return result

    wrapper.__name__ = method_name
    return wrapper


for _name in ("demote", "promote", "prefetch", "try_make_room",
              "insert", "consumer_done", "materialized",
              "force_release", "adopt", "demote_victim", "set_owner"):
    setattr(CheckedLedger, _name, _checked(_name))


# spill_insert's direct-placement path increments spill_count without a
# _demote_locked call; observe it by diffing around the original body
_original_spill_insert = TieredLedger.spill_insert


def _spill_insert_checked(self, *args, **kwargs):
    before = self.spill_count - self.observed_demotions
    result = _original_spill_insert(self, *args, **kwargs)
    tier_idx, _ = result
    if tier_idx > 0:
        self.observed_demotions += 1  # direct placement episode
    drift = (self.spill_count - self.observed_demotions) - before
    if drift:
        raise LedgerInvariantError(
            f"spill_insert changed spill_count by an unobserved "
            f"{drift} episodes")
    self._check()
    return result


CheckedLedger.spill_insert = _spill_insert_checked


def _random_case(rng: random.Random):
    """One random (graph, plan, ram, SpillConfig) scenario."""
    n_nodes = rng.choice([12, 18, 24])
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(
            n_nodes=n_nodes,
            height_width_ratio=rng.choice([0.5, 1.0, 2.0])),
        seed=rng.randrange(10_000))
    codec = rng.choice(["none", "zlib"])
    if codec != "none" and rng.random() < 0.7:
        for node_id in graph.nodes():
            graph.node(node_id).meta["compressibility"] = rng.choice(
                [0.0, 0.3, 1.0, 2.0])
    budget = rng.uniform(0.2, 0.4) * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=rng.randrange(100)).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    if peak <= 0:
        return None
    ram = rng.uniform(0.25, 0.8) * peak
    tiers = [TierSpec("ssd", rng.uniform(0.3, 0.8) * peak)]
    if rng.random() < 0.8:
        tiers.append(TierSpec(
            "disk",
            codec=rng.choice([None, "none", "zlib"])))
    else:
        tiers[0] = TierSpec("ssd")  # single unbounded tier
    if rng.random() < 0.5:
        # compressed-in-RAM rung above the device tiers: finite stored
        # budget, its own codec half the time (else the zlib1 default)
        tiers.insert(0, TierSpec(
            RAM_COMPRESSED, rng.uniform(0.1, 0.4) * peak,
            codec=rng.choice([None, "zlib1", "columnar"])))
    spill = SpillConfig(
        tiers=tuple(tiers),
        policy=rng.choice(["cost", "lru", "largest"]),
        promote=rng.random() < 0.8,
        arbitrate=rng.random() < 0.8,
        codec=codec,
        prefetch=rng.random() < 0.5,
        adapt=(CodecAdaptConfig(samples=rng.choice([1, 2, 4]),
                                threshold=rng.choice([0.1, 0.25]))
               if rng.random() < 0.5 else None))
    return graph, plan, ram, spill


@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_ledger_invariants(seed, monkeypatch):
    """Random scenarios: per-step ledger invariants hold on both
    backends and the serial / ``workers=1`` traces stay bit-equal."""
    monkeypatch.setattr("repro.store.tiered.TieredLedger", CheckedLedger)
    rng = random.Random(seed)
    cases = spills = 0
    while cases < CASES_PER_SEED:
        case = _random_case(rng)
        if case is None:
            continue
        graph, plan, ram, spill = case
        cases += 1
        controller = Controller(options=SimulatorOptions(spill=spill))
        serial = controller.refresh(graph, ram, plan=plan, method="sc")
        workers1 = controller.refresh(graph, ram, plan=plan, method="sc",
                                      backend="parallel", workers=1)
        # zero invariant violations is implicit (a violation raises);
        # make sure the checker actually ran, and ran on both backends
        assert serial.extras["tiered_store"] is not None
        spills += serial.extras["tiered_store"]["spill_count"]
        # bit-equal traces, every field and every extras key
        assert serial.to_dict() == workers1.to_dict()
        # lossless JSON round-trip on a randomized trace
        assert RunTrace.from_json(serial.to_json()).to_dict() \
            == serial.to_dict()
    assert cases == CASES_PER_SEED
    assert spills > 0, "random scenarios never spilled; harness too weak"


@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_checked_ledger_actually_checks(seed, monkeypatch):
    """Meta-test: the harness's checker runs and can fail.

    Guards against the monkeypatch silently stopping to bite (e.g. a
    backend importing the ledger differently), which would turn the
    whole harness into a vacuous pass.
    """
    monkeypatch.setattr("repro.store.tiered.TieredLedger", CheckedLedger)
    rng = random.Random(seed)
    case = None
    while case is None:
        case = _random_case(rng)
    graph, plan, ram, spill = case
    simulator_options = SimulatorOptions(spill=spill)
    from repro.engine.simulator import RefreshSimulator

    state = RefreshSimulator(options=simulator_options).begin(
        ram, graph=graph)
    ledger = state.catalog
    assert isinstance(ledger, CheckedLedger)
    ledger.insert("probe", min(ram, 1.0), n_consumers=1)
    assert ledger.checks_run > 0
    # corrupt the accounting behind the checker's back: must raise
    ledger._usage += 17.0
    with pytest.raises(LedgerInvariantError):
        ledger._check()


# -- lock-order assertion (fast, runs in tier-1, no marker) -----------

def test_lock_order_consistent_nesting_passes():
    registry = LockOrderRegistry()
    a = TrackedRLock("a", registry)
    b = TrackedRLock("b", registry)
    for _ in range(3):
        with a:
            with a:  # re-entrant: no self-edge
                with b:
                    pass
    assert registry.edges() == {("a", "b"): 3}
    registry.assert_acyclic()


def test_lock_order_inversion_detected():
    registry = LockOrderRegistry()
    a = TrackedRLock("a", registry)
    b = TrackedRLock("b", registry)
    with a:
        with b:
            pass
    registry.assert_acyclic()  # one direction only: still fine
    with b:
        with a:  # the ABBA inversion (no deadlock: same thread)
            pass
    with pytest.raises(LockOrderError) as excinfo:
        registry.assert_acyclic()
    assert "a" in str(excinfo.value) and "b" in str(excinfo.value)


def test_checked_ledger_audits_lock_order():
    """A real demotion nests the RAM lock over the tier ledger's lock;
    the CheckedLedger must record that edge and stay acyclic."""
    from repro.store.config import SpillConfig, TierSpec

    ledger = CheckedLedger(
        budget=2.0,
        config=SpillConfig(tiers=(TierSpec("ssd", 10.0),)),
        charge_io=False)
    ledger.insert("a", 1.5, n_consumers=1)
    ledger.demote("a", now=0.0)
    edges = ledger.lock_order.edges()
    assert any(src == "ram" for (src, dst) in edges), edges
    ledger.lock_order.assert_acyclic()


# -- concurrent admitters: the atomic select-and-demote race ----------

@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_admitters_never_double_demote(seed):
    """Regression for the pick_victim/demote race: N racing admitters
    draining RAM through :meth:`TieredLedger.demote_victim` must demote
    every entry exactly once.

    Under the old two-step protocol (``pick_victim()`` then
    ``demote()``, each separately locked) two threads could select the
    same victim between the calls; the atomic select-and-demote holds
    the ledger lock across both, so the returned victims partition the
    entries.  Invariants re-verify after every step (the
    ``CheckedLedger`` wrappers) and the lock-order audit proves the
    nested RAM->tier acquires stay acyclic."""
    import threading

    rng = random.Random(seed)
    n_entries = rng.choice([40, 60])
    n_threads = 4
    ledger = CheckedLedger(
        budget=float(n_entries),
        config=SpillConfig(tiers=(TierSpec("ssd"),)),
        charge_io=False)
    for i in range(n_entries):
        ledger.insert(f"n{i}", rng.uniform(0.5, 1.0), n_consumers=1)

    demoted: list[list[str]] = [[] for _ in range(n_threads)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def admitter(tid: int) -> None:
        try:
            barrier.wait()
            while True:
                shed = ledger.demote_victim(now=0.0)
                if shed is None:
                    return
                victim, charges = shed
                assert charges is not None
                demoted[tid].append(victim)
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=admitter, args=(tid,))
               for tid in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    flat = [victim for per_thread in demoted for victim in per_thread]
    assert len(flat) == n_entries, (
        f"{n_entries - len(flat)} entries never demoted")
    assert len(set(flat)) == len(flat), (
        "a victim was demoted twice — the select-and-demote race")
    assert ledger.usage == pytest.approx(0.0, abs=_EPS)
    assert ledger.checks_run > 0
    ledger.lock_order.assert_acyclic()


@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_owner_filtered_demotion_respects_tenants(seed):
    """Racing per-tenant shedders (``demote_victim(owner=...)``) only
    ever demote their own tenant's entries, exactly once each, and the
    tenant balances drain to zero in lockstep."""
    import threading

    rng = random.Random(seed)
    per_tenant = rng.choice([15, 25])
    ledger = CheckedLedger(
        budget=float(4 * per_tenant),
        config=SpillConfig(tiers=(TierSpec("ssd"),)),
        charge_io=False)
    tenants = ("a", "b")
    for tenant in tenants:
        ledger.register_tenant(tenant, budget=2.0 * per_tenant)
    for i in range(per_tenant):
        for tenant in tenants:
            node = f"{tenant}{i}"
            ledger.set_owner(node, tenant)
            ledger.insert(node, rng.uniform(0.5, 1.0), n_consumers=1)

    demoted: dict[str, list[str]] = {tenant: [] for tenant in tenants}
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(tenants) * 2)

    def shedder(tenant: str) -> None:
        try:
            barrier.wait()
            while True:
                shed = ledger.demote_victim(now=0.0, owner=tenant)
                if shed is None:
                    return
                demoted[tenant].append(shed[0])
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=shedder, args=(tenant,))
               for tenant in tenants for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors
    for tenant in tenants:
        assert len(demoted[tenant]) == per_tenant
        assert len(set(demoted[tenant])) == per_tenant
        assert all(victim.startswith(tenant)
                   for victim in demoted[tenant]), (
            f"tenant {tenant} demoted another tenant's entry")
        assert ledger.tenant_usage(tenant) == pytest.approx(0.0,
                                                           abs=_EPS)
    ledger.lock_order.assert_acyclic()


# -- service-layer fuzz: concurrent requests x random cancellations ---

@pytest.mark.random_invariants
@pytest.mark.parametrize("seed", SEEDS)
def test_service_requests_with_random_cancellations_leave_no_residue(
        seed):
    """N concurrent refresh requests over one shared CheckedLedger,
    a random subset cancelled mid-flight: every ledger invariant holds
    after every mutation, and after the drain the shared ledger is
    empty — no negative balances, no leaked consumer counts after a
    cancel, and per-tenant usage summing to ledger usage throughout
    (the tenant-sum check inside ``CheckedLedger._check``)."""
    import asyncio

    from repro.serve.service import (
        RefreshService,
        ServiceConfig,
        TenantSpec,
    )

    rng = random.Random(seed)
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=rng.choice([12, 18])),
        seed=rng.randrange(10_000))
    budget = rng.uniform(0.25, 0.4) * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=rng.randrange(100)).plan
    config = ServiceConfig(
        ram_budget_gb=budget,
        spill=SpillConfig(tiers=(TierSpec("ssd"),)),
        queue_limit=64, max_concurrent=rng.choice([4, 8]),
        time_scale=1e-4)
    tenants = [TenantSpec("a", 0.5, priority=1), TenantSpec("b", 0.5)]
    ledger = CheckedLedger(budget, config.spill)
    service = RefreshService(config, tenants, ledger=ledger)
    n_requests = 12

    async def run_fuzz():
        async with service as svc:
            handles = []
            for i in range(n_requests):
                handles.append(await svc.submit(
                    graph, plan, tenant="ab"[i % 2],
                    deadline_s=(0.05 if rng.random() < 0.15 else None)))
                await asyncio.sleep(rng.uniform(0.0, 0.004))
            for handle in handles:
                if rng.random() < 0.3:
                    handle.cancel()
            return [await handle for handle in handles]

    results = asyncio.run(run_fuzz())

    statuses = {result.status for result in results}
    assert statuses <= {"ok", "cancelled", "timeout"}, statuses
    assert "ok" in statuses, "every request died; fuzz too aggressive"
    # the run exercised the checker (every mutation re-verified the
    # invariants, tenant-sum included) and actually spilled
    assert ledger.checks_run > 0
    assert ledger.spill_count > 0, "service fuzz never spilled"
    # drained service: zero residue anywhere in the hierarchy
    violations = service.audit()
    assert all(not value for value in violations.values()), violations
    assert ledger.resident() == []
    for tenant in ("a", "b"):
        assert ledger.tenant_usage(tenant) == pytest.approx(0.0,
                                                            abs=_EPS)
    ledger.lock_order.assert_acyclic()
