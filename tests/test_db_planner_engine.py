"""Tests for the SQL planner and the MiniDB engine."""

import numpy as np
import pytest

from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
from repro.db.planner import execute_sql, referenced_tables
from repro.db.table import Table
from repro.errors import CatalogError, PlanningError, WorkloadError


@pytest.fixture
def db(tmp_path) -> MiniDB:
    db = MiniDB(str(tmp_path / "warehouse"))
    rng = np.random.default_rng(0)
    db.register_table("sales", Table({
        "item_id": rng.integers(0, 20, 500),
        "qty": rng.integers(1, 10, 500),
        "price": rng.uniform(1.0, 50.0, 500),
    }))
    db.register_table("items", Table({
        "item_id": np.arange(20),
        "category": np.arange(20) % 4,
    }))
    return db


def resolver_for(db):
    return lambda name: db.table(name)


class TestPlanner:
    def test_join_where_group(self, db):
        result = execute_sql(
            "SELECT category, SUM(qty) AS total FROM sales "
            "JOIN items ON item_id = item_id WHERE qty > 5 "
            "GROUP BY category ORDER BY category",
            resolver_for(db))
        assert result.column_names == ["category", "total"]
        assert result["category"].tolist() == [0, 1, 2, 3]

    def test_matches_numpy_oracle(self, db):
        result = execute_sql(
            "SELECT SUM(price * qty) AS revenue FROM sales",
            resolver_for(db))
        sales = db.table("sales")
        expected = float((sales["price"] * sales["qty"]).sum())
        assert result["revenue"][0] == pytest.approx(expected)

    def test_select_star(self, db):
        result = execute_sql("SELECT * FROM items", resolver_for(db))
        assert result.column_names == ["item_id", "category"]
        assert len(result) == 20

    def test_qualified_name_resolution(self, db):
        result = execute_sql(
            "SELECT items.category FROM sales "
            "JOIN items ON sales.item_id = items.item_id LIMIT 3",
            resolver_for(db))
        assert result.column_names == ["category"]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(PlanningError, match="unknown column"):
            execute_sql("SELECT ghost FROM items", resolver_for(db))

    def test_non_grouped_output_rejected(self, db):
        with pytest.raises(PlanningError):
            execute_sql(
                "SELECT qty, SUM(price) AS s FROM sales GROUP BY item_id",
                resolver_for(db))

    def test_order_by_must_be_in_output(self, db):
        with pytest.raises(PlanningError):
            execute_sql("SELECT category FROM items ORDER BY item_id",
                        resolver_for(db))

    def test_referenced_tables(self):
        assert referenced_tables(
            "SELECT a FROM t JOIN u ON x = y") == ["t", "u"]


class TestMiniDB:
    def test_ctas_to_disk_and_read_back(self, db):
        timing = db.ctas("by_cat",
                         "SELECT category, COUNT(*) AS n FROM items "
                         "GROUP BY category")
        assert timing.write_seconds > 0
        assert timing.rows == 4
        table = db.table("by_cat")
        assert table["n"].sum() == 20

    def test_ctas_to_memory(self, db):
        timing = db.ctas("mem_table", "SELECT * FROM items",
                         location="memory")
        assert timing.write_seconds == 0.0
        assert db.catalog.in_memory("mem_table")
        elapsed = db.materialize_from_memory("mem_table")
        assert elapsed > 0
        assert db.catalog.persisted("mem_table")
        db.release_memory("mem_table")
        assert not db.catalog.in_memory("mem_table")

    def test_ctas_bad_location(self, db):
        with pytest.raises(WorkloadError):
            db.ctas("x", "SELECT * FROM items", location="tape")

    def test_reads_prefer_memory(self, db):
        db.ctas("cached", "SELECT * FROM items", location="memory")
        _, timing = db.query("SELECT COUNT(*) AS n FROM cached")
        assert timing.bytes_read_memory > 0
        assert timing.bytes_read_disk == 0

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.table("ghost")


class TestSqlWorkload:
    def make_workload(self, db) -> SqlWorkload:
        return SqlWorkload(db=db, definitions=[
            MvDefinition("mv_enriched",
                         "SELECT item_id, qty, price, category FROM sales "
                         "JOIN items ON item_id = item_id"),
            MvDefinition("mv_by_cat",
                         "SELECT category, SUM(price) AS revenue "
                         "FROM mv_enriched GROUP BY category"),
            MvDefinition("mv_top",
                         "SELECT category, revenue FROM mv_by_cat "
                         "WHERE revenue > 0"),
        ])

    def test_graph_extraction(self, db):
        workload = self.make_workload(db)
        graph = workload.graph()
        assert graph.n == 3
        assert graph.has_edge("mv_enriched", "mv_by_cat")
        assert graph.has_edge("mv_by_cat", "mv_top")

    def test_duplicate_names_rejected(self, db):
        with pytest.raises(WorkloadError):
            SqlWorkload(db=db, definitions=[
                MvDefinition("a", "SELECT * FROM items"),
                MvDefinition("a", "SELECT * FROM items"),
            ])

    def test_self_reference_rejected(self, db):
        workload = SqlWorkload(db=db, definitions=[
            MvDefinition("loop", "SELECT * FROM loop")])
        with pytest.raises(WorkloadError):
            workload.graph()

    def test_profile_annotates_graph(self, db):
        workload = self.make_workload(db)
        graph = workload.profile()
        assert graph.size_of("mv_enriched") > 0
        assert graph.node("mv_enriched").compute_time is not None
        assert graph.node("mv_enriched").meta["base_input_gb"] > 0
        assert graph.score_of("mv_enriched") > 0
        # profile cleans up the created MVs
        assert not db.catalog.persisted("mv_enriched")
