"""Tests for generic pipeline specs and the S/C bridge (repro.etl)."""

import pytest

from repro.errors import ValidationError, WorkloadError
from repro.etl.planner import (
    plan_pipeline,
    simulate_schedule,
    spec_to_graph,
)
from repro.etl.spec import JobSpec, PipelineSpec


def daily_etl() -> PipelineSpec:
    """Extract → clean/enrich transforms → aggregate → loads."""
    return PipelineSpec(name="daily_etl", jobs=[
        JobSpec("extract_orders", kind="extract", output_gb=0.8,
                external_input_gb=1.2, compute_s=2.0),
        JobSpec("extract_users", kind="extract", output_gb=0.3,
                external_input_gb=0.5, compute_s=1.0),
        JobSpec("clean_orders", inputs=("extract_orders",),
                output_gb=0.7, compute_s=3.0),
        JobSpec("enrich", inputs=("clean_orders", "extract_users"),
                output_gb=0.9, compute_s=4.0),
        JobSpec("daily_totals", inputs=("enrich",), output_gb=0.05,
                compute_s=2.0),
        JobSpec("load_warehouse", kind="load", inputs=("enrich",),
                output_gb=0.9, compute_s=1.0),
        JobSpec("load_dashboard", kind="load", inputs=("daily_totals",),
                output_gb=0.05, compute_s=0.5),
    ])


class TestJobSpec:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValidationError):
            JobSpec("x", kind="mystery")

    def test_rejects_self_dependency(self):
        with pytest.raises(ValidationError):
            JobSpec("x", inputs=("x",))

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValidationError):
            JobSpec("x", output_gb=-1.0)

    def test_loads_not_cacheable(self):
        assert not JobSpec("x", kind="load").cacheable
        assert JobSpec("x", kind="transform").cacheable
        assert JobSpec("x", kind="extract").cacheable


class TestPipelineSpec:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(WorkloadError):
            PipelineSpec(name="p", jobs=[JobSpec("a"), JobSpec("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(WorkloadError):
            PipelineSpec(name="p", jobs=[JobSpec("a", inputs=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(WorkloadError):
            PipelineSpec(name="p", jobs=[
                JobSpec("a", inputs=("b",)), JobSpec("b", inputs=("a",))])

    def test_json_round_trip(self):
        spec = daily_etl()
        clone = PipelineSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()

    def test_malformed_payload(self):
        with pytest.raises(ValidationError):
            PipelineSpec.from_dict({"jobs": []})

    def test_consumers(self):
        spec = daily_etl()
        assert spec.consumers("enrich") == ["daily_totals",
                                            "load_warehouse"]

    def test_add_job_revalidates(self):
        spec = daily_etl()
        bigger = spec.add_job(JobSpec("extra", inputs=("enrich",)))
        assert "extra" in bigger.job_ids
        with pytest.raises(WorkloadError):
            spec.add_job(JobSpec("bad", inputs=("ghost",)))


class TestSpecToGraph:
    def test_structure_mirrors_spec(self):
        graph = spec_to_graph(daily_etl())
        assert graph.n == 7
        assert graph.has_edge("enrich", "load_warehouse")
        assert graph.node("extract_orders").meta["base_input_gb"] == \
            pytest.approx(1.2)

    def test_loads_get_zero_score(self):
        graph = spec_to_graph(daily_etl())
        assert graph.score_of("load_warehouse") == 0.0
        assert graph.score_of("load_dashboard") == 0.0
        assert graph.score_of("enrich") > 0.0


class TestPlanPipeline:
    def test_schedule_is_complete_permutation(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=1.0)
        assert sorted(schedule.order) == sorted(daily_etl().job_ids)

    def test_loads_never_in_memory(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=10.0)
        assert "load_warehouse" not in schedule.flagged
        assert "load_dashboard" not in schedule.flagged

    def test_generous_budget_flags_transforms(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=10.0)
        assert "enrich" in schedule.flagged

    def test_zero_budget_flags_nothing(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=0.0)
        assert not schedule.flagged

    def test_release_points_follow_last_consumer(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=10.0)
        step = schedule.step("enrich")
        assert step.kept_in_memory
        order = schedule.order
        # released only after both of its consumers ran
        release_pos = order.index(step.release_after)
        assert release_pos >= order.index("daily_totals")
        assert release_pos >= order.index("load_warehouse")

    def test_render_mentions_memory(self):
        schedule = plan_pipeline(daily_etl(), memory_budget_gb=10.0)
        text = schedule.render()
        assert "MEMORY" in text
        assert "daily_etl" in text

    def test_simulate_schedule_beats_unoptimized(self):
        spec = daily_etl()
        optimized = plan_pipeline(spec, memory_budget_gb=1.0)
        baseline = plan_pipeline(spec, memory_budget_gb=0.0)
        fast = simulate_schedule(spec, optimized)
        slow = simulate_schedule(spec, baseline)
        assert fast.end_to_end_time < slow.end_to_end_time
