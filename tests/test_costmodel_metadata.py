"""Tests for the device cost model and execution metadata."""

import pytest

from repro.errors import ValidationError
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import (
    ClusterProfile,
    DeviceProfile,
    POLARS_PROFILE,
)
from repro.metadata.estimator import OperatorSizeEstimator
from repro.metadata.metadata import NodeMetadata, WorkloadMetadata


class TestDeviceProfile:
    def test_defaults_match_paper_environment(self):
        profile = DeviceProfile()
        # §VI-A: 519.8 MB/s read, 358.9 MB/s write, 175 us latency
        assert profile.disk_read_bandwidth == pytest.approx(519.8 / 1024)
        assert profile.disk_write_bandwidth == pytest.approx(358.9 / 1024)
        assert profile.read_latency == pytest.approx(175e-6)

    def test_time_functions(self):
        profile = DeviceProfile()
        expected_read_bw = 1.0 / (1.0 / profile.disk_read_bandwidth
                                  + 1.0 / profile.decode_rate)
        assert profile.read_time_disk(1.0) == pytest.approx(
            175e-6 + 1.0 / expected_read_bw)
        assert profile.read_time_memory(1.0) < profile.read_time_disk(1.0)
        assert profile.write_time_disk(1.0) > profile.read_time_disk(1.0)

    def test_codec_pipeline(self):
        raw = DeviceProfile(decode_rate=float("inf"),
                            encode_rate=float("inf"))
        assert raw.effective_read_bandwidth == pytest.approx(
            raw.disk_read_bandwidth)
        assert raw.effective_write_bandwidth == pytest.approx(
            raw.disk_write_bandwidth)
        # the codec stage can only slow the pipeline down
        coded = DeviceProfile()
        assert coded.effective_read_bandwidth < coded.disk_read_bandwidth
        assert coded.effective_write_bandwidth < coded.disk_write_bandwidth

    def test_background_write_skips_encode(self):
        profile = DeviceProfile()
        # background drain pays raw device bandwidth only, so it is faster
        # than the blocking encode+transfer path
        assert profile.background_write_time(1.0) < \
            profile.write_time_disk(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            DeviceProfile(disk_read_bandwidth=0.0)
        with pytest.raises(ValidationError):
            DeviceProfile(read_latency=-1.0)
        with pytest.raises(ValidationError):
            DeviceProfile(background_interference=1.0)
        with pytest.raises(ValidationError):
            DeviceProfile(background_parallelism=0.0)

    def test_scaled(self):
        profile = DeviceProfile()
        doubled = profile.scaled(2.0)
        assert doubled.disk_read_bandwidth == pytest.approx(
            2 * profile.disk_read_bandwidth)
        assert doubled.read_latency == profile.read_latency
        with pytest.raises(ValidationError):
            profile.scaled(0.0)

    def test_polars_profile_is_faster(self):
        assert POLARS_PROFILE.disk_read_bandwidth > \
            DeviceProfile().disk_read_bandwidth


class TestClusterProfile:
    def test_amdahl_speedup(self):
        single = ClusterProfile(worker_count=1)
        assert single.speedup_factor == pytest.approx(1.0)
        five = ClusterProfile(worker_count=5, serial_fraction=0.12)
        assert 1.0 < five.speedup_factor < 5.0

    def test_sublinear(self):
        factors = [ClusterProfile(worker_count=n).speedup_factor
                   for n in (1, 2, 3, 4, 5)]
        assert factors == sorted(factors)
        gains = [b / a for a, b in zip(factors, factors[1:])]
        assert gains == sorted(gains, reverse=True)  # diminishing returns

    def test_validation(self):
        with pytest.raises(ValidationError):
            ClusterProfile(worker_count=0)
        with pytest.raises(ValidationError):
            ClusterProfile(serial_fraction=1.0)


class TestNodeMetadata:
    def test_windowed_mean(self):
        meta = NodeMetadata(node_id="a", window=3)
        for value in (10.0, 20.0, 30.0, 40.0):
            meta.record(value)
        assert meta.estimated_size == pytest.approx(30.0)  # last 3

    def test_rejects_negative(self):
        meta = NodeMetadata(node_id="a")
        with pytest.raises(ValidationError):
            meta.record(-1.0)
        with pytest.raises(ValidationError):
            meta.record(1.0, compute_time=-0.5)

    def test_no_observations(self):
        meta = NodeMetadata(node_id="a")
        assert meta.estimated_size == 0.0
        assert meta.estimated_compute_time is None


class TestWorkloadMetadata:
    def test_record_and_annotate(self, diamond_graph):
        store = WorkloadMetadata()
        store.record_run({"a": 7.0, "b": 2.0},
                         compute_times={"a": 1.5})
        store.annotate_graph(diamond_graph)
        assert diamond_graph.size_of("a") == 7.0
        assert diamond_graph.node("a").compute_time == 1.5
        assert diamond_graph.size_of("c") == 3.0  # untouched

    def test_annotate_with_scores(self, diamond_graph):
        store = WorkloadMetadata()
        store.record_run({v: 1.0 for v in diamond_graph.nodes()})
        store.annotate_graph(diamond_graph, cost_model=DeviceProfile())
        assert all(diamond_graph.score_of(v) > 0
                   for v in diamond_graph.nodes())

    def test_require_all(self, diamond_graph):
        store = WorkloadMetadata()
        store.record_run({"a": 1.0})
        with pytest.raises(ValidationError):
            store.annotate_graph(diamond_graph, require_all=True)

    def test_json_round_trip(self):
        store = WorkloadMetadata()
        store.record_run({"a": 1.0, "b": 2.0}, {"a": 0.5})
        restored = WorkloadMetadata.from_json(store.to_json())
        assert restored.node("a").output_sizes == [1.0]
        assert restored.node("a").compute_times == [0.5]


class TestOperatorSizeEstimator:
    def test_ranges_respected(self):
        import random

        estimator = OperatorSizeEstimator()
        rng = random.Random(0)
        for _ in range(50):
            agg = estimator.estimate("AGG", [10.0], rng)
            assert 0.1 <= agg <= 2.0
            join = estimator.estimate("JOIN", [10.0, 2.0], rng)
            assert 2.0 <= join <= 12.0

    def test_union_sums_inputs(self):
        import random

        estimator = OperatorSizeEstimator()
        assert estimator.estimate("UNION", [1.0, 2.0, 3.0],
                                  random.Random(0)) == pytest.approx(6.0)

    def test_empty_inputs_rejected(self):
        import random

        with pytest.raises(ValidationError):
            OperatorSizeEstimator().estimate("JOIN", [], random.Random(0))

    def test_bad_range_rejected(self):
        with pytest.raises(ValidationError):
            OperatorSizeEstimator(selectivity={"X": (0.5, 0.2)})
