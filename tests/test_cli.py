"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import save_graph
from tests.conftest import make_fig7_problem


@pytest.fixture
def graph_file(tmp_path) -> str:
    path = str(tmp_path / "graph.json")
    save_graph(make_fig7_problem().graph, path)
    return path


class TestOptimize:
    def test_prints_plan(self, graph_file, capsys):
        assert main(["optimize", graph_file, "--memory", "100"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total_score"] == 210
        assert set(payload["plan"]["flagged"]) >= {"v1", "v3", "v6"}

    def test_writes_file(self, graph_file, tmp_path):
        out = str(tmp_path / "plan.json")
        main(["optimize", graph_file, "--memory", "100",
              "--output", out])
        payload = json.loads(open(out).read())
        assert payload["plan"]["order"][0] == "v1"

    def test_method_choice_enforced(self, graph_file):
        with pytest.raises(SystemExit):
            main(["optimize", graph_file, "--memory", "100",
                  "--method", "nope"])


class TestSimulate:
    def test_summary_output(self, graph_file, capsys):
        assert main(["simulate", graph_file, "--memory", "100",
                     "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end time" in out
        assert "peak catalog use" in out
        assert "|" in out  # gantt bars

    def test_lru_method(self, graph_file, capsys):
        assert main(["simulate", graph_file, "--memory", "100",
                     "--method", "lru"]) == 0
        assert "lru" in capsys.readouterr().out


class TestWorkload:
    def test_emits_graph_json(self, capsys):
        assert main(["workload", "io2", "--scale-gb", "10"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["nodes"]) == 19

    def test_partitioned_smaller(self, tmp_path):
        regular = str(tmp_path / "r.json")
        partitioned = str(tmp_path / "p.json")
        main(["workload", "io1", "--output", regular])
        main(["workload", "io1", "--partitioned", "--output",
              partitioned])
        size_r = sum(n["size"] for n in
                     json.loads(open(regular).read())["nodes"])
        size_p = sum(n["size"] for n in
                     json.loads(open(partitioned).read())["nodes"])
        assert size_p < size_r


class TestBench:
    def test_runs_fig2(self, capsys):
        assert main(["bench", "fig2"]) == 0
        assert "transformation" in capsys.readouterr().out


class TestExplain:
    def test_explains_fig7_plan(self, graph_file, capsys):
        assert main(["explain", graph_file, "--memory", "100"]) == 0
        out = capsys.readouterr().out
        assert "kept" in out
        assert "occupancy" in out

    def test_no_profile_flag(self, graph_file, capsys):
        assert main(["explain", graph_file, "--memory", "100",
                     "--no-profile"]) == 0
        assert "occupancy" not in capsys.readouterr().out


class TestPipeline:
    @pytest.fixture
    def spec_file(self, tmp_path) -> str:
        from repro.etl.spec import JobSpec, PipelineSpec

        spec = PipelineSpec(name="nightly", jobs=[
            JobSpec("extract", kind="extract", output_gb=0.5,
                    external_input_gb=1.0, compute_s=1.0),
            JobSpec("transform", inputs=("extract",), output_gb=0.4,
                    compute_s=2.0),
            JobSpec("load", kind="load", inputs=("transform",),
                    output_gb=0.4, compute_s=0.5),
        ])
        path = str(tmp_path / "spec.json")
        with open(path, "w") as handle:
            handle.write(spec.to_json())
        return path

    def test_prints_schedule(self, spec_file, capsys):
        assert main(["pipeline", spec_file, "--memory", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "nightly" in out
        assert "storage" in out

    def test_simulate_flag(self, spec_file, capsys):
        assert main(["pipeline", spec_file, "--memory", "1.0",
                     "--simulate"]) == 0
        assert "end-to-end" in capsys.readouterr().out
