"""Spill-to-disk integration across the execution backends.

The acceptance contract of the tiered store:

* with spill *disabled* (the default), every backend produces traces
  bit-identical to the pre-tiered behavior;
* with spill *enabled* and a RAM budget below the plan's peak, runs
  complete, RAM-tier usage stays within budget throughout, and the
  extras report spill/promote counts;
* the parallel backend at ``workers=1`` reproduces the tiered serial
  simulator bit-for-bit, tiers and all;
* the MiniDB backend performs *real* spills (files appear in the spill
  directory mid-run) and still produces correct table contents.
"""

import os

import pytest

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.errors import ExecutionError
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

TRACE_ATTRS = ("start", "end", "read_disk", "read_memory", "compute",
               "write", "create_memory", "stall", "spill_write",
               "promote_read")


def _case(seed, n_nodes=24, ratio=0.5, budget_fraction=0.25):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=ratio),
        seed=seed)
    budget = budget_fraction * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    return graph, plan, budget


def _spill_options(ram_peak, policy="cost", promote=True):
    return SimulatorOptions(spill=SpillConfig(
        tiers=(TierSpec("ssd", 0.5 * ram_peak), TierSpec("disk")),
        policy=policy, promote=promote))


def _assert_traces_equal(a, b):
    assert [n.node_id for n in a.nodes] == [n.node_id for n in b.nodes]
    assert a.end_to_end_time == pytest.approx(b.end_to_end_time)
    assert a.peak_catalog_usage == pytest.approx(b.peak_catalog_usage)
    for x, y in zip(a.nodes, b.nodes):
        for attr in TRACE_ATTRS:
            assert getattr(x, attr) == pytest.approx(getattr(y, attr)), \
                (x.node_id, attr)


class TestSpillDisabledIsIdentical:
    @pytest.mark.parametrize("backend,workers", [
        ("simulator", 1), ("parallel", 1), ("parallel", 4)])
    def test_default_options_report_no_extras(self, backend, workers):
        graph, plan, budget = _case(0)
        trace = Controller().refresh(graph, budget, plan=plan, method="sc",
                                     backend=backend, workers=workers)
        assert trace.extras == {}
        assert all(n.spill_write == 0 and n.promote_read == 0
                   for n in trace.nodes)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_roomy_spill_run_matches_disabled_run(self, seed):
        """With enough RAM the tiered machinery must be a no-op: the
        trace matches the plain run number for number."""
        graph, plan, budget = _case(seed)
        plain = Controller().refresh(graph, budget, plan=plan, method="sc")
        tiered = Controller(options=_spill_options(budget)).refresh(
            graph, budget, plan=plan, method="sc")
        _assert_traces_equal(plain, tiered)
        assert tiered.extras["tiered_store"]["spill_count"] == 0


class TestSimulatorSpill:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    @pytest.mark.parametrize("policy", ["cost", "lru", "largest"])
    def test_completes_below_peak_within_ram_budget(self, seed, policy):
        graph, plan, budget = _case(seed)
        peak = Controller().refresh(
            graph, budget, plan=plan, method="sc").peak_catalog_usage
        ram = 0.3 * peak
        controller = Controller(
            options=_spill_options(peak, policy=policy))
        trace = controller.refresh(graph, ram, plan=plan, method="sc")
        report = trace.extras["tiered_store"]
        assert len(trace.nodes) == graph.n
        assert trace.peak_catalog_usage <= ram + 1e-9
        assert report["tiers"][0]["peak"] <= ram + 1e-9
        assert report["policy"] == policy
        assert report["spill_count"] > 0
        assert trace.spill_time > 0
        # every flagged node kept its flag: no blocking write-through
        assert all(n.write == 0 for n in trace.nodes if n.flagged)

    def test_starved_run_slower_than_full_ram(self):
        graph, plan, budget = _case(2)
        full = Controller().refresh(graph, budget, plan=plan, method="sc")
        peak = full.peak_catalog_usage
        starved = Controller(options=_spill_options(peak)).refresh(
            graph, 0.2 * peak, plan=plan, method="sc")
        assert starved.end_to_end_time > full.end_to_end_time

    def test_spill_shorthand_on_controller(self):
        graph, plan, budget = _case(4)
        spill = SpillConfig(tiers=(TierSpec("disk"),))
        trace = Controller(spill=spill).refresh(
            graph, 0.2 * budget, plan=plan, method="sc")
        assert "tiered_store" in trace.extras

    def test_conflicting_spill_configs_rejected(self):
        from repro.errors import ValidationError

        graph, plan, budget = _case(4)
        controller = Controller(
            options=SimulatorOptions(spill=SpillConfig(
                tiers=(TierSpec("ssd", 1.0),))),
            spill=SpillConfig(tiers=(TierSpec("disk"),)))
        with pytest.raises(ValidationError, match="conflicting spill"):
            controller.refresh(graph, budget, plan=plan, method="sc")

    def test_lru_with_spill_rejected_instead_of_ignored(self):
        from repro.errors import ValidationError

        graph, _, budget = _case(4)
        controller = Controller(spill=SpillConfig(
            tiers=(TierSpec("disk"),)))
        with pytest.raises(ValidationError, match="LRU baseline"):
            controller.refresh(graph, budget, method="lru")

    def test_finite_hierarchy_bills_demotions_made_before_failure(self):
        """When no tier can host an output, demotions already performed
        while trying must still land in a node's timeline, keeping the
        extras counters and trace.spill_time consistent."""
        from repro.core.plan import Plan
        from repro.graph.dag import DependencyGraph

        graph = DependencyGraph()
        for node_id, size in (("v1", 0.5), ("v2", 1.4), ("big", 2.0)):
            graph.add_node(node_id, size=size, score=size)
        graph.add_edge("v1", "big")
        graph.add_edge("v2", "big")
        plan = Plan(order=("v1", "v2", "big"),
                    flagged=frozenset({"v1", "v2", "big"}))
        options = SimulatorOptions(spill=SpillConfig(
            tiers=(TierSpec("ssd", 1.2),), policy="largest"))
        trace = Controller(options=options).refresh(
            graph, 2.0, plan=plan, method="sc")
        report = trace.extras["tiered_store"]
        big = next(n for n in trace.nodes if n.node_id == "big")
        assert big.write > 0                # flag lost: nothing could host it
        assert report["spill_count"] == 1   # v1 demoted while trying
        assert trace.spill_time > 0         # ...and that move was billed

    def test_error_overflow_still_raises_on_finite_hierarchy(self):
        graph, plan, budget = _case(0)
        tiny = SimulatorOptions(
            on_overflow="error",
            spill=SpillConfig(tiers=(TierSpec("ssd", 1e-9),)))
        with pytest.raises(ExecutionError, match="no storage tier"):
            Controller(options=tiny).refresh(graph, 1e-9, plan=plan,
                                             method="sc")

    def test_unbounded_last_tier_never_loses_a_flag(self):
        """Even an absurd RAM budget completes with every flag kept."""
        graph, plan, _ = _case(1)
        trace = Controller(options=_spill_options(1.0)).refresh(
            graph, 1e-9, plan=plan, method="sc")
        assert len(trace.nodes) == graph.n
        assert all(n.write == 0 for n in trace.nodes if n.flagged)
        assert trace.peak_catalog_usage <= 1e-9


class TestParallelSpill:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_workers1_matches_tiered_serial_simulator(self, seed):
        graph, plan, budget = _case(seed)
        peak = Controller().refresh(
            graph, budget, plan=plan, method="sc").peak_catalog_usage
        controller = Controller(options=_spill_options(peak))
        ram = 0.3 * peak
        serial = controller.refresh(graph, ram, plan=plan, method="sc")
        par = controller.refresh(graph, ram, plan=plan, method="sc",
                                 backend="parallel", workers=1)
        _assert_traces_equal(serial, par)
        assert par.extras["tiered_store"]["spill_count"] == \
            serial.extras["tiered_store"]["spill_count"]

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_concurrent_workers_stay_within_ram_budget(self, seed):
        graph, plan, budget = _case(seed, ratio=0.25)
        peak = Controller().refresh(
            graph, budget, plan=plan, method="sc").peak_catalog_usage
        ram = 0.4 * peak
        controller = Controller(options=_spill_options(peak))
        trace = controller.refresh(graph, ram, plan=plan, method="sc",
                                   backend="parallel", workers=4)
        report = trace.extras["tiered_store"]
        assert len(trace.nodes) == graph.n
        assert trace.peak_catalog_usage <= ram + 1e-9
        assert report["tiers"][0]["peak"] <= ram + 1e-9

    def test_deterministic_given_seed(self):
        graph, plan, budget = _case(4, ratio=0.25)
        controller = Controller(options=_spill_options(0.3 * budget))
        runs = [controller.refresh(graph, 0.2 * budget, plan=plan,
                                   method="sc", backend="parallel",
                                   workers=4, seed=11) for _ in range(2)]
        _assert_traces_equal(runs[0], runs[1])

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_oversized_flagged_node_keeps_flag_via_lower_tier(self,
                                                              workers):
        """A flagged output bigger than RAM lands in a lower tier with
        its flag intact on every worker count — the scenario the tiered
        store exists for must not silently degrade to a blocking write
        under concurrency."""
        from repro.core.plan import Plan
        from repro.graph.dag import DependencyGraph

        graph = DependencyGraph()
        for node_id, size in (("a", 1.0), ("big", 5.0), ("c", 1.0)):
            graph.add_node(node_id, size=size, score=size)
        graph.add_edge("a", "big")
        graph.add_edge("big", "c")
        plan = Plan(order=("a", "big", "c"),
                    flagged=frozenset({"a", "big"}))
        controller = Controller(options=SimulatorOptions(
            spill=SpillConfig(tiers=(TierSpec("disk"),))))
        trace = controller.refresh(graph, 2.0, plan=plan, method="sc",
                                   backend="parallel", workers=workers)
        big = next(n for n in trace.nodes if n.node_id == "big")
        assert big.flagged and big.write == 0
        assert big.spill_write > 0
        assert trace.peak_catalog_usage <= 2.0 + 1e-9

    def test_spill_counters_and_timelines_agree(self):
        """Demotions from failed admission attempts must still be billed
        to some node's timeline (extras and trace.spill_time agree)."""
        from repro.core.plan import Plan
        from repro.graph.dag import DependencyGraph

        graph = DependencyGraph()
        for node_id, size in (("v", 1.0), ("big", 2.0)):
            graph.add_node(node_id, size=size, score=size)
        graph.add_edge("v", "big")
        plan = Plan(order=("v", "big"), flagged=frozenset({"v", "big"}))
        controller = Controller(options=SimulatorOptions(
            spill=SpillConfig(tiers=(TierSpec("ssd", 1.0),))))
        trace = controller.refresh(graph, 2.0, plan=plan, method="sc",
                                   backend="parallel", workers=2)
        report = trace.extras["tiered_store"]
        assert (report["spill_count"] > 0) == (trace.spill_time > 0)


class TestMiniDbRealSpill:
    @pytest.fixture
    def workload(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
        from repro.db.table import Table

        db = MiniDB(str(tmp_path / "wh"))
        rng = np.random.default_rng(3)
        n = 80_000
        db.register_table("events", Table({
            "user": rng.integers(0, 50, n),
            "amount": rng.uniform(0, 10, n),
        }))
        return SqlWorkload(db=db, definitions=[
            MvDefinition("mv_a", "SELECT user, amount FROM events "
                                 "WHERE amount > 1"),
            MvDefinition("mv_b", "SELECT user, amount FROM mv_a "
                                 "WHERE amount > 2"),
            MvDefinition("mv_c", "SELECT user, SUM(amount) AS s "
                                 "FROM mv_a GROUP BY user"),
            MvDefinition("mv_d", "SELECT user, amount FROM mv_b "
                                 "WHERE amount > 3"),
            MvDefinition("mv_e", "SELECT user, SUM(amount) AS t "
                                 "FROM mv_b GROUP BY user"),
        ])

    def test_real_spill_bounded_ram_and_correct_results(self, workload,
                                                        tmp_path):
        import numpy as np

        profiled = workload.profile()
        plan = Controller().plan(profiled, 1000.0, method="sc")
        assert plan.flagged, "profiled scores should make flagging win"
        sizes = {n: profiled.size_of(n) for n in profiled.nodes()}
        ram = 1.1 * max(sizes[n] for n in plan.flagged)
        spill_dir = str(tmp_path / "spill")
        controller = Controller(spill_dir=spill_dir)
        trace = controller.refresh_on_minidb(workload, ram, method="sc",
                                             plan=plan)
        report = trace.extras["tiered_store"]
        assert trace.peak_catalog_usage <= ram + 1e-9
        assert report["spill_count"] > 0
        assert report["tiers"][1]["name"] == "spill-disk"
        # scratch copies are cleaned up once entries drain
        assert os.listdir(spill_dir) == []
        # every MV is durable and correct despite the spilling
        db = workload.db
        for name in profiled.nodes():
            assert db.catalog.persisted(name)
        spend = db.table("mv_c").columns()["s"]
        raw = db.table("events").columns()
        expected = raw["amount"][raw["amount"] > 1].sum()
        assert np.isclose(spend.sum(), expected)

    def test_spill_disabled_keeps_plain_ledger(self, workload):
        workload.profile()
        trace = Controller().refresh_on_minidb(workload, 1000.0,
                                               method="sc")
        assert trace.extras == {}
