"""Tests for the LRU baseline, the cluster model, and the Controller."""

import pytest

from repro.core.plan import Plan
from repro.engine.cluster import simulate_cluster_lru, simulate_cluster_run
from repro.engine.controller import Controller
from repro.engine.lru import LruCache, LruSimulator
from repro.errors import ValidationError
from repro.metadata.costmodel import ClusterProfile, DeviceProfile
from tests.conftest import make_random_problem


class TestLruCache:
    def test_hit_miss_accounting(self):
        cache = LruCache(capacity=10.0)
        assert not cache.get("a")
        cache.put("a", 4.0)
        assert cache.get("a")
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order(self):
        cache = LruCache(capacity=10.0)
        cache.put("a", 4.0)
        cache.put("b", 4.0)
        cache.get("a")            # a becomes MRU
        cache.put("c", 4.0)       # evicts b (LRU)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_oversized_not_admitted(self):
        cache = LruCache(capacity=5.0)
        cache.put("big", 50.0)
        assert "big" not in cache
        assert cache.usage == 0.0

    def test_refresh_updates_size(self):
        cache = LruCache(capacity=10.0)
        cache.put("a", 4.0)
        cache.put("a", 6.0)
        assert cache.usage == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            LruCache(capacity=-1.0)
        cache = LruCache(capacity=5.0)
        with pytest.raises(ValidationError):
            cache.put("a", -1.0)


class TestLruSimulator:
    def test_repeated_consumer_hits_cache(self, diamond_graph):
        for node_id in diamond_graph.nodes():
            diamond_graph.node(node_id).compute_time = 1.0
        trace = LruSimulator().run(diamond_graph, ["a", "b", "c", "d"],
                                   cache_size=100.0)
        # a is read by b (miss -> cached at production) and by c (hit)
        total_hits = sum(n.cache_hits for n in trace.nodes)
        assert total_hits >= 2  # a for b&c from cache; b,c for d
        assert trace.end_to_end_time > 0

    def test_zero_cache_behaves_like_no_opt(self, diamond_graph):
        for node_id in diamond_graph.nodes():
            diamond_graph.node(node_id).compute_time = 1.0
        lru = LruSimulator().run(diamond_graph, ["a", "b", "c", "d"], 0.0)
        assert sum(n.cache_hits for n in lru.nodes) == 0


class TestClusterModel:
    def test_more_workers_faster_but_sublinear(self):
        problem = make_random_problem(4, n_nodes=15)
        plan = Plan.unoptimized(list(problem.graph.nodes()))
        # use a topological order
        from repro.graph.topo import kahn_topological_order

        plan = Plan.unoptimized(kahn_topological_order(problem.graph))
        times = []
        for workers in (1, 2, 4):
            trace = simulate_cluster_run(
                problem.graph, plan, problem.memory_budget,
                ClusterProfile(worker_count=workers))
            times.append(trace.end_to_end_time)
        assert times[0] > times[1] > times[2]
        assert times[0] / times[2] < 4.0  # sub-linear

    def test_speedup_flat_across_workers(self):
        from repro.core.optimizer import optimize

        problem = make_random_problem(6, n_nodes=18, budget_fraction=0.4)
        plan_none = optimize(problem, "none").plan
        plan_sc = optimize(problem, "sc").plan
        speedups = []
        for workers in (1, 3, 5):
            cluster = ClusterProfile(worker_count=workers)
            none_t = simulate_cluster_run(
                problem.graph, plan_none, problem.memory_budget,
                cluster).end_to_end_time
            sc_t = simulate_cluster_run(
                problem.graph, plan_sc, problem.memory_budget,
                cluster).end_to_end_time
            speedups.append(none_t / sc_t)
        assert max(speedups) - min(speedups) < 0.2

    def test_lru_cluster_variant_runs(self, diamond_graph):
        trace = simulate_cluster_lru(
            diamond_graph, ["a", "b", "c", "d"], 10.0,
            ClusterProfile(worker_count=2))
        assert trace.end_to_end_time > 0


class TestController:
    def test_plan_and_refresh(self):
        problem = make_random_problem(8, n_nodes=12, budget_fraction=0.4)
        controller = Controller()
        plan = controller.plan(problem.graph, problem.memory_budget, "sc")
        trace = controller.refresh(problem.graph, problem.memory_budget,
                                   plan=plan, method="sc")
        assert trace.method == "sc"
        assert trace.end_to_end_time > 0

    def test_lru_method_dispatch(self):
        problem = make_random_problem(9, n_nodes=10)
        controller = Controller()
        trace = controller.refresh(problem.graph, problem.memory_budget,
                                   method="lru")
        assert trace.method == "lru"

    def test_lru_rejects_plan(self, diamond_graph):
        controller = Controller()
        with pytest.raises(ValidationError):
            controller.refresh(diamond_graph, 1.0, method="lru",
                               plan=Plan.unoptimized(["a", "b", "c", "d"]))


class TestTraceReporting:
    def test_breakdown_sums_to_one(self):
        problem = make_random_problem(10, n_nodes=10)
        trace = Controller().refresh(problem.graph,
                                     problem.memory_budget, "sc")
        parts = trace.breakdown()
        assert sum(parts.values()) == pytest.approx(1.0)
        assert trace.io_ratio() == pytest.approx(
            parts["read"] + parts["write"])

    def test_gantt_renders(self):
        problem = make_random_problem(11, n_nodes=6)
        trace = Controller().refresh(problem.graph,
                                     problem.memory_budget, "sc")
        art = trace.gantt(width=40)
        assert len(art.splitlines()) == len(trace.nodes) + 1
