"""Figure 14 — DAG-shape parameter sweeps vs predicted savings.

Paper claims: predicted savings correlate strongly with DAG size (but
sub-proportionally — nested MVs shrink); "thinner" DAGs (higher
height/width ratio) save more; higher max out-degree saves more (each
flagged node serves more consumers); stage-count variance barely matters.
"""

from repro.bench import experiments


def test_fig14_parameter_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.fig14_parameter_sweep,
                                kwargs={"n_dags": 6},
                                rounds=1, iterations=1)
    show(result)
    norm = result.data["normalized"]

    # savings grow strongly from small DAGs (paper: highly correlated with
    # size, sub-proportionally; 50 vs 100 sits inside generator noise)
    assert norm[("DAG size", "25")] < norm[("DAG size", "50")]
    assert norm[("DAG size", "25")] < norm[("DAG size", "100")]

    # higher out-degree -> more consumers per flagged node -> more savings
    assert norm[("max outdegree", "1")] < norm[("max outdegree", "5")]

    # stage-count variance has only a mild effect (paper: negligible)
    stdev_values = [norm[("stage StDev", f"{v:g}")]
                    for v in (0.0, 1.0, 2.0, 3.0, 4.0)]
    assert max(stdev_values) / min(stdev_values) < 1.6, stdev_values
