"""Figure 11 — Memory Catalog size sweep, spare vs query memory.

Paper claims: speedup is already significant with a catalog of 0.4 % of
data size and grows (monotonically, then saturating) up to 6.4 %; carving
the catalog out of query memory instead of spare memory costs at most a
small constant (<= 0.25x) of speedup.
"""

from repro.bench import experiments


def test_fig11_memory_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.fig11_memory_sweep,
                                rounds=1, iterations=1)
    show(result)
    speedups = result.data["speedups"]
    fractions = sorted(speedups)

    spare = [speedups[f]["spare"] for f in fractions]
    query = [speedups[f]["query"] for f in fractions]

    # significant gains even at the smallest catalog (paper: 1.50x with
    # 0.4%; our simulator's removable-I/O share is smaller, so the bar is
    # proportionally lower)
    assert spare[0] > 1.05
    # larger catalogs never hurt (monotone up to simulator noise)
    for a, b in zip(spare, spare[1:]):
        assert b >= a - 0.02, spare
    # query-memory carve-out costs only a small speedup delta
    for s, q in zip(spare, query):
        assert s - q <= 0.25 + 1e-9, (s, q)
        assert q > 1.0
