"""Observability overhead — the zero-overhead-when-off claim, measured.

Not a paper figure: this is the acceptance benchmark of the ``repro.obs``
event bus.  Every instrumentation site in the simulator, the scheduler,
and the tiered store is guarded by ``if bus.enabled`` against the
:data:`~repro.obs.events.NULL_BUS` singleton.  The claims under test
(the PR's acceptance bar):

* with the bus **off** (the default), a run emits nothing — the bus
  stays empty, so traces stay bit-equal to the pre-observability
  goldens (the bit-equality itself is asserted in ``tests/test_obs.py``
  against ``tests/data/golden_pr5_trace.json``);
* with the bus **on**, recording every span/instant/counter of a real
  spilling MiniDB refresh costs **< 2% wall-clock** over the events-off
  run;
* the bus *observes* and never *perturbs*: the simulated trace JSON is
  byte-identical with events on and off, and per-event emission cost on
  the discrete-event simulator stays in the tens of microseconds.

The wall-clock gate runs on MiniDB because that is the backend where
wall-clock *is* the result: each node does real numpy work and real
spill I/O, so the per-event cost is amortized the way a production run
would amortize it.  The pure simulator models a 100 GB warehouse in
about a millisecond — there the meaningful number is the absolute cost
per event, which this file reports (and bounds) separately.

Timing protocol: plans are computed once outside the timed region; the
minimum of ``_SAMPLES`` timed runs represents each arm (min-of-N is the
standard low-noise estimator for a deterministic workload).
"""

import time

import numpy as np

from repro.bench.experiments import ExperimentResult
from repro.db.engine import MiniDB, MvDefinition, SqlWorkload
from repro.db.table import Table
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.obs.events import EventBus
from repro.store.config import SpillConfig, parse_tier
from repro.workloads.five_workloads import build_workload

_SAMPLES = 5
_MAX_OVERHEAD = 0.02       # the ACCEPTANCE bar: < 2% wall-clock
_MAX_EVENT_COST = 100e-6   # sanity bound on simulator emission cost

#: MiniDB arm: a tight RAM budget over a tier-aware plan so the run
#: crosses the real spill/promote paths (events: node spans, demote
#: instants, occupancy counters).
_DB_MEMORY_GB = 0.001
_DB_ROWS = 120_000

#: Simulator arm: RAM well below the tier-aware plan's needs with two
#: compressed tiers and prefetching armed.
_SIM_MEMORY_GB = 1.0
_SIM_SPILL = SpillConfig(
    tiers=(parse_tier("ssd:2:zlib"), parse_tier("disk:inf:zlib")),
    prefetch=True)


def _demo_workload(data_dir: str, rows: int = _DB_ROWS,
                   seed: int = 0) -> SqlWorkload:
    """The CLI's six-MV demo workload over one generated base table."""
    db = MiniDB(data_dir)
    rng = np.random.default_rng(seed)
    db.register_table("events", Table({
        "user": rng.integers(0, 50, rows),
        "amount": rng.uniform(0, 10, rows),
    }))
    return SqlWorkload(db=db, definitions=[
        MvDefinition("mv_recent",
                     "SELECT user, amount FROM events WHERE amount > 1"),
        MvDefinition("mv_big",
                     "SELECT user, amount FROM mv_recent WHERE amount > 2"),
        MvDefinition("mv_spend",
                     "SELECT user, SUM(amount) AS spend "
                     "FROM mv_recent GROUP BY user"),
        MvDefinition("mv_whales",
                     "SELECT user, amount FROM mv_big WHERE amount > 5"),
        MvDefinition("mv_big_spend",
                     "SELECT user, SUM(amount) AS spend "
                     "FROM mv_big GROUP BY user"),
        MvDefinition("mv_vip",
                     "SELECT user, amount FROM mv_whales WHERE amount > 8"),
    ])


def _time_minidb_arm(workload, plan, spill_dir, bus):
    controller = Controller(spill_dir=spill_dir,
                            spill=SpillConfig(codec="zlib"), bus=bus)
    best = float("inf")
    trace = None
    for _ in range(_SAMPLES):
        if bus is not None:
            bus.clear()
        started = time.perf_counter()
        trace = controller.refresh_on_minidb(
            workload, _DB_MEMORY_GB, method="sc", seed=0, plan=plan)
        best = min(best, time.perf_counter() - started)
    return best, trace


def test_minidb_events_on_overhead_under_two_percent(tmp_path, show):
    workload = _demo_workload(str(tmp_path / "warehouse"))
    spill_dir = str(tmp_path / "spill")
    profiled = workload.profile()
    planner = Controller(spill_dir=spill_dir,
                         spill=SpillConfig(codec="zlib"))
    plan = planner.plan_for_minidb(profiled, _DB_MEMORY_GB, method="sc",
                                   seed=0, tier_aware=True)

    off_seconds, off_trace = _time_minidb_arm(workload, plan, spill_dir,
                                              bus=None)
    bus = EventBus()
    on_seconds, on_trace = _time_minidb_arm(workload, plan, spill_dir,
                                            bus=bus)

    # the instrumented run recorded the run it ran: node spans for
    # every MV, store instants, occupancy counters, real spilling
    assert {event.kind for event in bus.events} == {
        "span", "instant", "counter"}
    assert on_trace.extras["tiered_store"]["spill_count"] > 0
    assert off_trace.extras["tiered_store"]["spill_count"] > 0

    overhead = on_seconds / off_seconds - 1.0
    show(ExperimentResult(
        experiment_id="obs-overhead",
        title="event-bus overhead on a spilling MiniDB refresh "
              f"(min of {_SAMPLES} runs)",
        headers=["arm", "seconds", "events", "overhead"],
        rows=[["events off", off_seconds, 0, "-"],
              ["events on", on_seconds, len(bus.events),
               f"{100 * overhead:+.2f}%"]]))

    # ACCEPTANCE: recording everything costs < 2% wall-clock
    assert overhead < _MAX_OVERHEAD, (
        f"event bus overhead {100 * overhead:.2f}% exceeds "
        f"{100 * _MAX_OVERHEAD:.0f}%")


def test_simulator_bus_observes_without_perturbing(show):
    graph = build_workload("io1", scale_gb=100.0)
    planner = Controller(options=SimulatorOptions(spill=_SIM_SPILL))
    plan = planner.plan(graph, _SIM_MEMORY_GB, method="sc", seed=0,
                        tier_aware=True)

    def run(bus):
        controller = Controller(options=SimulatorOptions(spill=_SIM_SPILL),
                                bus=bus)
        best = float("inf")
        trace = None
        for _ in range(_SAMPLES):
            if bus is not None:
                bus.clear()
            started = time.perf_counter()
            trace = controller.refresh(graph, _SIM_MEMORY_GB,
                                       method="sc", seed=0, plan=plan)
            best = min(best, time.perf_counter() - started)
        return best, trace

    off_seconds, off_trace = run(None)
    bus = EventBus()
    on_seconds, on_trace = run(bus)

    # identical simulated results either way: the bus observes the
    # modeled run, it never perturbs it
    assert on_trace.to_json() == off_trace.to_json()
    assert on_trace.extras["tiered_store"]["spill_count"] > 0
    assert {event.kind for event in bus.events} == {
        "span", "instant", "counter"}

    per_event = (on_seconds - off_seconds) / max(len(bus.events), 1)
    show(ExperimentResult(
        experiment_id="obs-overhead",
        title="per-event emission cost on the discrete-event simulator",
        headers=["arm", "seconds", "events", "us/event"],
        rows=[["events off", off_seconds, 0, "-"],
              ["events on", on_seconds, len(bus.events),
               f"{1e6 * per_event:.2f}"]]))

    # a millisecond-scale modeled run amortizes nothing, so the bound
    # here is on the absolute emission cost, not a percentage
    assert per_event < _MAX_EVENT_COST, (
        f"per-event cost {1e6 * per_event:.1f}us exceeds "
        f"{1e6 * _MAX_EVENT_COST:.0f}us")


def test_threaded_dispatch_rounds_are_not_poll_quantized(show):
    """Regression: the thread-pool dispatcher is event-driven.

    It used to park on ``cv.wait(timeout=0.5)`` when blocked, so a
    wakeup could trail the completion that enabled it by up to the full
    poll interval.  Now a blocked round parks on a predicate wait keyed
    to the completion count and wakes exactly on ``finish_node``'s
    notify — the wall-clock gap ending every blocked round must be the
    running nodes' remaining compute, never a ~0.5 s poll tail.
    """
    from repro.exec.parallel import run_threaded

    graph = build_workload("io1", scale_gb=100.0)
    planner = Controller()
    plan = planner.plan(graph, _SIM_MEMORY_GB, method="sc", seed=0)
    bus = EventBus()
    # a one-worker pool over multi-node ready sets blocks the
    # dispatcher on every round while a node runs (~10 ms each)
    trace = run_threaded(graph, plan, memory_budget=graph.total_size(),
                         workers=1, time_scale=5e-4, bus=bus)
    assert trace.end_to_end_time < 0.5  # compute itself is tiny

    rounds = [event for event in bus.events
              if event.name == "dispatch-round"]
    blocked_gaps = [
        rounds[i].t0 - rounds[i - 1].t0
        for i in range(1, len(rounds)) if rounds[i].args["after_block"]]
    assert blocked_gaps, "no blocked dispatch round was observed"
    worst = max(blocked_gaps)
    show(ExperimentResult(
        experiment_id="obs-overhead",
        title="blocked dispatch-round wakeup gaps (event-driven wait)",
        headers=["rounds", "blocked", "worst gap (ms)"],
        rows=[[len(rounds), len(blocked_gaps), f"{1e3 * worst:.2f}"]]))

    # a single 0.5 s-quantized wakeup anywhere would trip this: each
    # node's scaled compute is ~10 ms, leaving a huge margin below the
    # old poll interval even on a loaded CI box
    assert worst < 0.25, (
        f"blocked dispatch round woke {worst:.3f}s after the previous "
        f"round — poll-quantized, not event-driven")
