"""Tiered spill store — runtime penalty vs RAM budgets below the peak.

Not a paper figure: this measures the repo's own extension, the tiered
storage subsystem (``repro/store/``).  Each DAG is planned once; the
plan's simulated peak residency defines the 100% point, and the same
plan re-executes at shrinking RAM budgets with an SSD + unbounded-disk
hierarchy armed.  The claims under test:

* every run completes even though the plan needs more live memory than
  the RAM tier grants — the scenario the pre-tiered repo rejected;
* the RAM-tier peak stays within its budget on *every* run;
* the full-RAM point spills nothing (and therefore pays no penalty),
  while starved budgets report growing spill counts and a bounded,
  monotone-ish runtime penalty.
"""

from repro.bench import experiments


def test_spill_tier_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.spill_tier_sweep,
                                rounds=1, iterations=1)
    show(result)

    fractions = sorted(result.data["fractions"])
    totals = result.data["totals"]
    spills = result.data["spills"]

    # the RAM tier never exceeded its budget, on any backend, on any run
    assert result.data["budget_ok"]

    # full RAM: no spills, and it is the fastest point of the sweep
    full = max(fractions)
    assert spills[full] == 0
    assert totals[full] == min(totals.values())

    # starved budgets actually exercise the tiers
    starved = min(fractions)
    assert spills[starved] > 0
    assert totals[starved] > totals[full]

    # spilling is a graceful degradation, not a cliff: even the most
    # starved budget stays within 2x of the full-RAM runtime here
    assert totals[starved] < 2.0 * totals[full]

    # runtime grows (weakly) as RAM shrinks; allow 2% wobble between
    # neighboring budget points (promotions can locally reorder costs)
    times = [totals[f] for f in fractions]  # ascending RAM
    for smaller_ram, bigger_ram in zip(times, times[1:]):
        assert bigger_ram <= smaller_ram * 1.02
