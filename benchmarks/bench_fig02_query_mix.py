"""Figure 2 — runtime breakdown by query type for ten warehouses.

Paper claim: data materialization (transformation) accounts for 2-38 % of
warehouse runtime, and in one workload (W6) exceeds analytics by 2.2x.
"""

from repro.bench import experiments


def test_fig2_query_type_breakdown(benchmark, show):
    result = benchmark.pedantic(experiments.fig2_query_type_breakdown,
                                rounds=1, iterations=1)
    show(result)
    shares = result.data["transformation_shares"]
    assert len(shares) == 10
    assert all(0.02 <= share <= 0.38 for share in shares.values())
    # the motivating observation: materialization is a significant cost
    assert max(shares.values()) > 0.2
