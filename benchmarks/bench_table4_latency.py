"""Table IV — table-read / compute / query latency vs Memory Catalog size.

Paper claims: growing the catalog monotonically shrinks total table-read
latency (1.42-1.51x lower at 6.4 %), while compute latency is essentially
untouched — reads, not compute, are what S/C optimizes.
"""

from repro.bench import experiments


def test_table4_latency_breakdown(benchmark, show):
    result = benchmark.pedantic(experiments.table4_latency_breakdown,
                                rounds=1, iterations=1)
    show(result)
    for dataset, columns in result.data["columns"].items():
        reads = [col[0] for col in columns]    # [no-opt, 0.4%, ..., 6.4%]
        computes = [col[1] for col in columns]

        # read latency shrinks as the catalog grows
        for smaller, larger in zip(reads[1:], reads[2:]):
            assert larger <= smaller * 1.02, (dataset, reads)
        assert reads[-1] < reads[0], dataset
        # the largest catalog cuts reads by a meaningful factor
        assert reads[0] / reads[-1] > 1.2, (dataset, reads)
        # compute is not the target: stays within a few percent
        base_compute = computes[0]
        for value in computes[1:]:
            assert abs(value - base_compute) / base_compute < 0.05, dataset
