"""Compressed spill pipeline — codec x prefetch below the plan's peak.

Not a paper figure: this measures the repo's own compressed-spill
extension.  Each DAG is planned once; the same plan is re-executed at
RAM points below its no-spill peak over an SSD + unbounded-disk
hierarchy, once per (codec, prefetch) arm.  The ``zlib`` arms charge
tier capacity the compressed bytes, pay an encode stage per demotion
and a decode stage per read-back; the ``+pf`` arms additionally promote
spilled parents of soon-to-run consumers during idle device time.  The
claims under test:

* a codec with ratio >= 2 beats ``none`` on total elapsed time at at
  least one RAM-below-peak point — the acceptance bar for the
  compressed pipeline (smaller transfers and a 2.6x-larger effective
  SSD beat the codec tax once spilling is heavy);
* promote-ahead prefetching never loses (its I/O rides the idle
  window) and actually fires below the peak;
* every run's ``extras["tiered_store"]`` carries the per-codec
  accounting: the codec name, stored-vs-logical spill volumes, per-tier
  codec ratios, and the prefetch counters;
* the RAM budget invariant holds on every arm;
* codec ``none`` + prefetch off reproduces the PR 3 pipeline
  bit-for-bit, serial and ``workers=1``, and with compression *on* the
  serial/``workers=1`` bit-equality still holds.
"""

import pytest

from repro.bench import experiments
from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.engine.simulator import SimulatorOptions
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

TRACE_ATTRS = ("start", "end", "read_disk", "read_memory", "compute",
               "write", "create_memory", "stall", "spill_write",
               "promote_read", "admission", "flagged")


def _tiered_case(seed=0, n_nodes=28):
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=n_nodes, height_width_ratio=0.5),
        seed=seed)
    budget = 0.3 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc", seed=seed).plan
    peak = Controller().refresh(
        graph, budget, plan=plan, method="sc").peak_catalog_usage
    return graph, plan, peak


def _assert_bit_equal(a, b):
    assert a.end_to_end_time == b.end_to_end_time
    assert a.peak_catalog_usage == b.peak_catalog_usage
    assert len(a.nodes) == len(b.nodes)
    for left, right in zip(a.nodes, b.nodes):
        assert left.node_id == right.node_id
        for attr in TRACE_ATTRS:
            assert getattr(left, attr) == getattr(right, attr), \
                (left.node_id, attr)


def test_compressed_spill_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.compressed_spill_sweep,
                                rounds=1, iterations=1)
    show(result)

    fractions = result.data["fractions"]
    totals = result.data["arm_totals"]

    # the RAM budget invariant held on every arm, every run
    assert result.data["budget_ok"]

    # every run emitted the per-codec trace extras (codec name, stored
    # volumes, per-tier ratios, prefetch counters) — the CI smoke check
    assert result.data["extras_ok"]

    # the simulator's stored bytes realized the modeled ratio
    assert result.data["observed_ratio"]["zlib"] == \
        pytest.approx(result.data["codec_ratios"]["zlib"])
    assert result.data["codec_ratios"]["zlib"] >= 2.0

    # ACCEPTANCE: a ratio->=2 codec beats 'none' on total elapsed time
    # at at least one below-peak RAM point (all sweep points are below
    # the plan's peak; in practice it wins on all of them here)
    below_peak = [f for f in fractions if f < 1.0]
    assert any(totals[("zlib", False)][f] < totals[("none", False)][f]
               for f in below_peak)

    # promote-ahead prefetching fires below the peak and never loses
    assert any(count > 0 for count in result.data["prefetches"].values())
    for codec in ("none", "zlib"):
        for fraction in fractions:
            assert totals[(codec, True)][fraction] <= \
                totals[(codec, False)][fraction]


def test_codec_none_prefetch_off_matches_uncompressed_pipeline():
    """``codec="none"`` + prefetch off must be indistinguishable from a
    spill config that never heard of codecs (the PR 3 pipeline):
    bit-equal traces on the serial simulator and at ``workers=1``."""
    graph, plan, peak = _tiered_case()
    ram = 0.4 * peak
    tiers = (TierSpec("ssd", 0.5 * peak), TierSpec("disk"))
    baseline = SpillConfig(tiers=tiers)  # PR 3 constructor call, as-was
    explicit = SpillConfig(tiers=tiers, codec="none", prefetch=False)
    assert baseline == explicit  # the new knobs default to off

    runs = {}
    for label, spill in (("baseline", baseline), ("explicit", explicit)):
        controller = Controller(options=SimulatorOptions(spill=spill))
        runs[label, "serial"] = controller.refresh(
            graph, ram, plan=plan, method="sc")
        runs[label, "workers1"] = controller.refresh(
            graph, ram, plan=plan, method="sc",
            backend="parallel", workers=1)
    assert runs["baseline", "serial"].extras["tiered_store"][
        "spill_count"] > 0
    _assert_bit_equal(runs["baseline", "serial"], runs["explicit", "serial"])
    _assert_bit_equal(runs["baseline", "serial"],
                      runs["explicit", "workers1"])
    _assert_bit_equal(runs["baseline", "workers1"],
                      runs["explicit", "workers1"])


def test_workers1_stays_bit_equal_with_compression_on():
    """The serial/``workers=1`` bit-equality invariant survives the
    compressed pipeline: codec + prefetch armed, both backends must
    produce the same trace number for number, prefetch counters
    included."""
    graph, plan, peak = _tiered_case(seed=2)
    ram = 0.35 * peak
    spill = SpillConfig(
        tiers=(TierSpec("ssd", 0.4 * peak), TierSpec("disk")),
        codec="zlib", prefetch=True)
    controller = Controller(options=SimulatorOptions(spill=spill))
    serial = controller.refresh(graph, ram, plan=plan, method="sc")
    workers1 = controller.refresh(graph, ram, plan=plan, method="sc",
                                  backend="parallel", workers=1)
    report = serial.extras["tiered_store"]
    assert report["codec"] == "zlib"
    assert report["spill_count"] > 0
    assert report["spill_stored_gb"] < report["spill_bytes_gb"]
    _assert_bit_equal(serial, workers1)
    assert serial.extras["tiered_store"]["prefetch"] == \
        workers1.extras["tiered_store"]["prefetch"]
    assert serial.extras["tiered_store"]["spill_stored_gb"] == \
        workers1.extras["tiered_store"]["spill_stored_gb"]
