"""Parallel scaling — the memory-bounded scheduler on wide DAGs.

Not a paper figure: this measures the repo's own extension, the
``"parallel"`` execution backend (see ``repro/exec/parallel.py``).  The
claims under test:

* simulated makespan shrinks monotonically as workers grow, with a
  measurable speedup at 4 workers on wide DAGs;
* the shared ``MemoryLedger`` keeps flagged residency within the budget
  on *every* run, serial or concurrent;
* the wall-clock row (real thread pool, sleep-backed node work) shows the
  concurrency is operating-system real, not a simulation artifact.
"""

from repro.bench import experiments


def test_parallel_scaling(benchmark, show):
    result = benchmark.pedantic(experiments.parallel_scaling,
                                rounds=1, iterations=1)
    show(result)

    totals = result.data["totals"]
    workers = sorted(totals)
    times = [totals[w] for w in workers]

    # the ledger never exceeded the budget, on any backend, on any run
    assert result.data["budget_ok"]

    # every parallel configuration beats serial; adjacent steps may wobble
    # a little (extra concurrency can force spills under a shared memory
    # bound), so allow 10% slack between neighbors
    for w in workers[1:]:
        assert totals[w] < totals[1], totals
    for before, after in zip(times, times[1:]):
        assert after <= before * 1.10
    # and 4 workers buy a real, measurable speedup on wide DAGs
    assert totals[1] / totals[4] > 1.2, totals

    # real threads show real wall-clock speedup (generous bound: CI boxes
    # schedule threads noisily, the effect is still unmistakable)
    wall = result.data["wall_clock"]
    assert wall[1] / wall[max(wall)] > 1.3, wall
