"""Figure 10 — speedup across dataset scales (10 GB to 1 TB).

Paper claim: with the Memory Catalog fixed at 1.6 % of data size, S/C's
speedup is consistent across scales — 1.58-1.71x on TPC-DS and
2.31-4.26x on TPC-DSp (always larger on the partitioned datasets).
"""

from repro.bench import experiments


def test_fig10_scales(benchmark, show):
    result = benchmark.pedantic(
        experiments.fig10_scales,
        kwargs={"scales_gb": (10, 25, 50, 100, 1000)},
        rounds=1, iterations=1)
    show(result)
    speedups = result.data["speedups"]

    ds = [v for (dataset, _), v in speedups.items() if dataset == "TPC-DS"]
    dsp = [v for (dataset, _), v in speedups.items()
           if dataset == "TPC-DSp"]

    # consistent: the spread across scales stays narrow on each dataset
    assert max(ds) / min(ds) < 1.5, ds
    assert max(dsp) / min(dsp) < 1.5, dsp
    # everyone gains, and the partitioned variant gains more at each scale
    assert min(ds) > 1.05
    for (dataset, scale), value in speedups.items():
        if dataset == "TPC-DS":
            assert speedups[("TPC-DSp", scale)] > value, scale
