"""Feedback loop — observed-cost replanning + adaptive codec re-pricing.

Not a paper figure: this measures the repo's own model-vs-runtime
feedback subsystem on mixed-compressibility workloads (per-node
``meta["compressibility"]``), where the zlib preset's 2.6x ratio is a
bad guess.  Two claims under test:

* **Replanning** — pass 1 runs the *static* tier-aware plan over an
  SSD + cold-tier hierarchy; its trace is distilled into a
  ``CostFeedback`` and pass 2 runs the *replanned* plan (observed
  spill/promote seconds per GB and realized codec ratios instead of
  the device/codec presets).  The replanned run is never worse and
  strictly better on at least one below-peak RAM point: the observed
  ratio (~1.2x, not 2.6x) and the cold tier's real round-trip cost
  zero out its discount, so the planner stops over-flagging bytes
  whose spill round trip costs more than the warehouse path.

* **Adaptive codec** — fixed ``none`` / fixed ``zlib`` arms race an
  adaptive arm on a *lean* mix (mostly incompressible: zlib's tax buys
  nothing) and a *rich* mix (preset-accurate: dropping zlib would
  forfeit real savings).  The adaptive arm matches the best fixed
  codec within the sampled spills' tuition (<= 2%) or beats it, drops
  the codec on the lean mix, and never false-triggers on the rich mix.

When ``FEEDBACK_BENCH_JSON`` is set, the sweep's raw data is written
there (the CI job uploads it as an artifact).
"""

import math

from repro.bench import emit_result_json, experiments


def test_feedback_loop_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.feedback_loop_sweep,
                                rounds=1, iterations=1)
    show(result)

    emit_result_json(result, env_var="FEEDBACK_BENCH_JSON")

    fractions = result.data["fractions"]
    static = result.data["static"]
    replan = result.data["replan"]

    # the RAM budget invariant held on every arm, every pass
    assert result.data["budget_ok"]

    # the observed ratio genuinely diverged from the 2.6x zlib preset —
    # otherwise this sweep would not exercise the loop at all
    assert result.data["mean_observed_ratio"] < 2.0

    # ACCEPTANCE: the feedback-replanned run is never worse than the
    # static tier-aware plan, and strictly better on >= 1 below-peak
    # point (all sweep points are below the plan's no-spill peak)
    for fraction in fractions:
        assert replan[fraction] <= static[fraction] * (1 + 1e-9), fraction
    assert any(replan[f] < static[f] * 0.999 for f in fractions)

    # feedback changed the decision, not just the score: the replanned
    # flag sets shrank where the cold tier stopped looking worthwhile
    assert any(result.data["replan_flags"][f]
               < result.data["static_flags"][f] for f in fractions)

    # ACCEPTANCE: the adaptive codec matches the best fixed codec
    # within the sampled spills' tuition (2%) or beats it, on both the
    # lean (mostly incompressible) and rich (preset-accurate) mixes,
    # and strictly beats the *wrong* fixed codec on each
    for mix, arms in result.data["codec_totals"].items():
        best = min(arms["none"], arms["zlib"])
        worst = max(arms["none"], arms["zlib"])
        assert arms["adaptive"] <= best * 1.02, (mix, arms)
        assert arms["adaptive"] < worst, (mix, arms)
    assert not math.isclose(
        result.data["codec_totals"]["rich"]["none"],
        result.data["codec_totals"]["rich"]["zlib"])

    # the adaptation did what the mixes demand: dropped the codec on
    # lean data, left the accurate preset alone on rich data
    lean_events = result.data["adapt_events"]["lean"]
    assert any(tally["switched"] > 0 for tally in lean_events.values())
    rich_events = result.data["adapt_events"]["rich"]
    assert all(tally["switched"] == 0 for tally in rich_events.values())
