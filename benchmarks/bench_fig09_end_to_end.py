"""Figure 9 — end-to-end refresh times: six methods x five workloads.

Paper claims: S/C speeds up end-to-end refresh vs the unoptimized engine
on every I/O-heavy workload, beats the off-the-shelf methods (LRU/Random/
Greedy/Ratio), gains more on the date-partitioned datasets (smaller
intermediates), and is neutral on the compute-bound workload.
"""

from repro.bench import experiments
from repro.workloads.five_workloads import WORKLOAD_NAMES


def test_fig9_end_to_end(benchmark, show):
    result = benchmark.pedantic(experiments.fig9_end_to_end,
                                rounds=1, iterations=1)
    show(result)
    times = result.data["times"]

    for (dataset, workload), series in times.items():
        # S/C never loses to any competitor (small tolerance for ties)
        best_other = min(series[m] for m in
                         ("lru", "random", "greedy", "ratio"))
        assert series["sc"] <= best_other * 1.01, (dataset, workload)
        assert series["sc"] <= series["none"] * 1.0001

    # clear wins on the I/O-heavy workloads of both datasets
    for dataset in ("TPC-DS", "TPC-DSp"):
        for workload in ("io1", "io2", "io3"):
            series = times[(dataset, workload)]
            assert series["none"] / series["sc"] > 1.10, (dataset, workload)

    # bigger wins on the partitioned datasets (paper: up to 5.08x there)
    for workload in ("io1", "io2", "io3"):
        ds = times[("TPC-DS", workload)]
        dsp = times[("TPC-DSp", workload)]
        assert dsp["none"] / dsp["sc"] > ds["none"] / ds["sc"], workload

    # compute-bound workload barely moves (paper: ~1.0x on Compute 1)
    for dataset in ("TPC-DS", "TPC-DSp"):
        series = times[(dataset, "compute1")]
        assert series["none"] / series["sc"] < 1.10

    assert set(w for _, w in times) == set(WORKLOAD_NAMES)
