"""Service latency under open-loop load — the serve layer's acceptance.

Not a paper figure: the paper measures refresh latency one run at a
time; this harness measures what the ROADMAP's serving story needs —
latency *percentiles* when many tenants' refresh requests arrive
concurrently against one shared :class:`~repro.store.tiered.
TieredLedger`.  Open-loop protocol: request arrivals are a seeded
Poisson process that does NOT wait for completions (the arrival clock
keeps ticking while the service queues), which is the protocol that
actually exposes queueing delay — closed loops self-throttle and hide
the knee.

The claims under test (the PR's acceptance bar):

* the service sustains **>= 8 concurrent in-flight requests across
  >= 2 tenants** — genuinely overlapping wall-clock intervals, not
  just queued — with **zero shared-ledger invariant violations**
  (``RefreshService.audit()`` after the drain);
* per-tenant p50/p99 latencies are reported, and the higher-priority
  tenant's median queue wait never falls behind the lower-priority
  tenant's under overload;
* pushing the arrival rate well past service capacity moves the
  latency distribution onto the **saturation knee**: mean queue wait
  under ~3x-capacity load is a large multiple of the lightly-loaded
  wait (self-calibrated against this machine's measured capacity, so
  the assertion is load-shape, not wall-clock, dependent).

When ``SERVICE_BENCH_JSON`` is set, the sweep's data is written there
as JSON — committed under ``benchmarks/baselines/service/`` as the
serve layer's ``BENCH_<date>.json`` trajectory artifact.  Tracked
totals hold only machine-independent counts (violations, completed
requests), never latencies.
"""

import os
import random

import pytest

from repro.bench import emit_result_json
from repro.bench.experiments import ExperimentResult
from repro.engine.controller import Controller
from repro.serve.service import (
    RefreshService,
    ServiceConfig,
    TenantSpec,
    percentile,
)
from repro.store.config import SpillConfig, TierSpec
from repro.workloads.five_workloads import build_workload

_SPILL = SpillConfig(tiers=(TierSpec("disk"),))
_TIME_SCALE = 2e-4
_SCALE_GB = 20.0
_RAM_FRACTION = 0.25
_TENANTS = (TenantSpec("alpha", 0.5, priority=1),
            TenantSpec("beta", 0.5, priority=0))


def _workload():
    graph = build_workload("io1", scale_gb=_SCALE_GB)
    budget = _RAM_FRACTION * graph.total_size()
    plan = Controller().plan(graph, budget, method="sc", seed=0)
    return graph, plan, budget


def _run_open_loop(graph, plan, budget, n_requests, arrival_rate,
                   seed=0, max_concurrent=8):
    """One open-loop trial: Poisson arrivals that never wait for
    completions.  Returns (service, results)."""
    import asyncio

    config = ServiceConfig(
        ram_budget_gb=budget, spill=_SPILL,
        queue_limit=max(n_requests, 1),
        max_concurrent=max_concurrent, time_scale=_TIME_SCALE)
    service = RefreshService(config, list(_TENANTS))
    rng = random.Random(seed)
    names = [spec.name for spec in _TENANTS]

    async def open_loop():
        async with service as svc:
            handles = []
            for i in range(n_requests):
                # open loop: sleep the inter-arrival gap, submit, move
                # on — never await a completion before the next arrival
                await asyncio.sleep(rng.expovariate(arrival_rate))
                handles.append(await svc.submit(
                    graph, plan, tenant=names[i % len(names)]))
            return [await handle for handle in handles]

    return service, asyncio.run(open_loop())


def _peak_overlap(results) -> int:
    """High-water mark of genuinely overlapping running requests."""
    events = []
    for result in results:
        if result.started_s is None:
            continue
        events.append((result.started_s, 1))
        events.append((result.finished_s, -1))
    events.sort()
    peak = level = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def _capacity(graph, plan, budget, max_concurrent=8) -> float:
    """Requests/second this machine serves at full concurrency,
    measured from one solo request."""
    service, results = _run_open_loop(graph, plan, budget,
                                      n_requests=1, arrival_rate=1e9)
    assert results[0].status == "ok"
    solo = results[0].finished_s - results[0].started_s
    return max_concurrent / solo


def test_service_sustains_concurrency_with_zero_violations(show):
    """ACCEPTANCE: >= 8 concurrent requests across 2 tenants, zero
    invariant violations, p50/p99 per tenant."""
    graph, plan, budget = _workload()
    capacity = _capacity(graph, plan, budget)
    # arrive just past capacity so the 8 slots genuinely fill
    service, results = _run_open_loop(
        graph, plan, budget, n_requests=32,
        arrival_rate=1.5 * capacity, seed=0)

    assert [r.status for r in results] == ["ok"] * len(results)
    peak = _peak_overlap(results)
    assert peak >= 8, (
        f"only {peak} requests ever ran concurrently; the harness "
        f"never filled the service's 8 slots")
    violations = service.audit()
    assert all(not value for value in violations.values()), violations

    by_tenant = service.latencies_by_tenant()
    rows = []
    for name in sorted(by_tenant):
        latencies = by_tenant[name]
        assert len(latencies) == len(results) // 2
        rows.append([name, len(latencies),
                     f"{percentile(latencies, 50) * 1e3:.1f}",
                     f"{percentile(latencies, 99) * 1e3:.1f}"])
    show(ExperimentResult(
        experiment_id="service-latency",
        title=f"open-loop serving: {len(results)} requests, "
              f"2 tenants, peak overlap {peak}",
        headers=["tenant", "ok", "p50 (ms)", "p99 (ms)"],
        rows=rows))


def test_saturation_knee_and_priority_under_overload(show):
    """Past capacity, queue wait explodes (the knee); the
    higher-priority tenant keeps the shorter median queue wait."""
    graph, plan, budget = _workload()
    capacity = _capacity(graph, plan, budget)

    def mean_queue_wait(results):
        waits = [r.queue_wait_s for r in results
                 if r.queue_wait_s is not None]
        return sum(waits) / len(waits)

    arms = []
    for label, rate_factor, n_requests in (
            ("light", 0.25, 16), ("at-capacity", 1.0, 24),
            ("overload", 3.0, 32)):
        service, results = _run_open_loop(
            graph, plan, budget, n_requests=n_requests,
            arrival_rate=rate_factor * capacity, seed=1)
        assert all(r.status == "ok" for r in results)
        assert not any(service.audit().values())
        arms.append((label, rate_factor, results,
                     mean_queue_wait(results)))

    show(ExperimentResult(
        experiment_id="service-latency",
        title="saturation knee: mean queue wait vs arrival rate "
              f"(capacity ~{capacity:.0f} req/s on this machine)",
        headers=["arm", "rate (x capacity)", "requests",
                 "mean queue wait (ms)"],
        rows=[[label, f"{factor:g}", len(results), f"{wait * 1e3:.2f}"]
              for label, factor, results, wait in arms]))

    light_wait = arms[0][3]
    overload_wait = arms[2][3]
    # the knee: open-loop overload queues grow with every arrival, so
    # the mean wait is a large multiple of the lightly-loaded wait
    assert overload_wait > 5.0 * max(light_wait, 1e-6), (
        f"no saturation knee: overload wait {overload_wait:.4f}s vs "
        f"light {light_wait:.4f}s")

    # under overload the priority queue must favor the alpha tenant:
    # its median queue wait never exceeds beta's
    overload_results = arms[2][2]
    waits = {name: sorted(r.queue_wait_s for r in overload_results
                          if r.tenant == name) for name in
             ("alpha", "beta")}
    assert percentile(waits["alpha"], 50) <= \
        percentile(waits["beta"], 50), (
        "the high-priority tenant queued longer than the low-priority "
        "one under overload")


def test_emit_bench_artifact(show):
    """Write the serve-layer trajectory JSON when SERVICE_BENCH_JSON is
    set (committed under benchmarks/baselines/service/).  Tracked
    totals are machine-independent counts only."""
    if not os.environ.get("SERVICE_BENCH_JSON"):
        pytest.skip("SERVICE_BENCH_JSON not set")
    graph, plan, budget = _workload()
    capacity = _capacity(graph, plan, budget)
    service, results = _run_open_loop(
        graph, plan, budget, n_requests=32,
        arrival_rate=1.5 * capacity, seed=0)
    violations = service.audit()
    by_tenant = service.latencies_by_tenant()
    rows = [[name, len(by_tenant[name]),
             f"{percentile(by_tenant[name], 50) * 1e3:.1f}",
             f"{percentile(by_tenant[name], 99) * 1e3:.1f}"]
            for name in sorted(by_tenant)]
    result = ExperimentResult(
        experiment_id="service-latency",
        title="open-loop multi-tenant serving over one shared ledger",
        headers=["tenant", "ok", "p50 (ms)", "p99 (ms)"],
        rows=rows,
        data={
            "config": {
                "workload": "io1", "scale_gb": _SCALE_GB,
                "ram_fraction": _RAM_FRACTION,
                "tenants": [spec.name for spec in _TENANTS],
                "requests": len(results), "max_concurrent": 8,
                "time_scale": _TIME_SCALE,
            },
            # gate-tracked: deterministic, machine-independent, and
            # lower-is-better (violation/failure counts), never
            # wall-clock latencies
            "totals": {
                "invariants": {
                    "violations": sum(len(v) for v in
                                      violations.values()),
                },
                "requests": {
                    "failed": sum(1 for r in results
                                  if r.status != "ok"),
                },
            },
            "peak_overlap": _peak_overlap(results),
        })
    show(result)
    emit_result_json(result, env_var="SERVICE_BENCH_JSON")
