"""Table V — S/C on multi-worker clusters.

Paper claims: absolute runtimes drop sub-linearly with worker count
(1528 s at 1 worker to 487 s at 5), while S/C's relative speedup stays
flat (1.60-1.71x) — the optimization is orthogonal to horizontal scaling.
"""

from repro.bench import experiments


def test_table5_cluster_scaling(benchmark, show):
    result = benchmark.pedantic(experiments.table5_cluster_scaling,
                                rounds=1, iterations=1)
    show(result)
    totals = result.data["totals"]
    workers = sorted(totals)

    no_opt = [totals[w][0] for w in workers]
    speedups = [totals[w][0] / totals[w][1] for w in workers]

    # runtimes drop with cluster size, sub-linearly
    for before, after in zip(no_opt, no_opt[1:]):
        assert after < before
    assert no_opt[0] / no_opt[-1] < len(workers)  # sub-linear

    # S/C's speedup is flat across cluster sizes
    assert max(speedups) - min(speedups) < 0.15, speedups
    assert min(speedups) > 1.05
