"""Shared configuration for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation section (see DESIGN.md's experiment index). Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print their reproduction table (use ``-s`` to see them inline)
and assert the paper's qualitative claims — who wins, and roughly where —
rather than absolute numbers, since the substrate is a simulator rather
than the authors' Presto testbed.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a report table so it survives pytest's capture."""
    def _show(result) -> None:
        with capsys.disabled():
            print()
            print(result.render())

    return _show
