"""Spill-aware planning — tier-blind vs tier-aware plans under one budget.

Not a paper figure: this measures the repo's own extension, spill-aware
planning (``TierAwareBudget``) plus stall-vs-spill arbitration.  Each DAG
is planned twice at every RAM point below its no-spill peak — once
tier-blind (the optimizer believes RAM is the only tier) and once
tier-aware (the optimizer fills an effective budget of RAM plus the
spill tiers' capacities discounted by their spill-write + promote-read
cost per byte) — and both plans execute under the same tiered runtime.
The claims under test:

* tier-aware plans beat tier-blind plans (lower total modeled cost) on
  every RAM-below-peak sweep point here — the acceptance bar is at
  least one;
* the tier-aware plan never flags fewer nodes than the tier-blind one
  (a bigger effective budget can only admit more candidates);
* the RAM-tier budget holds on every run;
* with spill disabled, traces are bit-equal across the serial simulator
  and the parallel scheduler at ``workers=1``, carry no tier extras,
  and record no arbitration decisions — the tier-aware machinery is
  inert exactly when it is unarmed.
"""

from repro.bench import experiments
from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine.controller import Controller
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

TRACE_ATTRS = ("start", "end", "read_disk", "read_memory", "compute",
               "write", "create_memory", "stall", "spill_write",
               "promote_read", "admission", "flagged")


def test_spill_planning_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.spill_planning_sweep,
                                rounds=1, iterations=1)
    show(result)

    fractions = result.data["fractions"]
    blind = result.data["blind"]
    aware = result.data["aware"]

    # the RAM tier never exceeded its budget, on any plan, on any run
    assert result.data["budget_ok"]

    # the effective budget only adds candidates, never removes them
    for fraction in fractions:
        assert (result.data["aware_flags"][fraction]
                >= result.data["blind_flags"][fraction])

    # ACCEPTANCE: tier-aware plans beat tier-blind plans on at least one
    # RAM-below-peak point (in practice: on all of them here)
    below_peak = [f for f in fractions if f < 1.0]
    assert any(aware[f] < blind[f] for f in below_peak)

    # the win is not a rounding artifact: somewhere it exceeds 5%
    assert any(aware[f] < 0.95 * blind[f] for f in below_peak)


def test_spill_disabled_traces_stay_bit_equal():
    """With no tiers armed, the planning/arbitration machinery must be
    invisible: serial and workers=1 parallel traces agree number for
    number, extras stay empty, and no admission decision is recorded."""
    graph = WorkloadGenerator().generate(
        GeneratedWorkloadConfig(n_nodes=24, height_width_ratio=0.5),
        seed=0)
    budget = 0.25 * graph.total_size()
    plan = optimize(ScProblem(graph=graph, memory_budget=budget),
                    method="sc").plan
    controller = Controller()
    serial = controller.refresh(graph, budget, plan=plan, method="sc")
    parallel = controller.refresh(graph, budget, plan=plan, method="sc",
                                  backend="parallel", workers=1)
    assert serial.extras == {} and parallel.extras == {}
    assert serial.end_to_end_time == parallel.end_to_end_time
    assert serial.peak_catalog_usage == parallel.peak_catalog_usage
    for a, b in zip(serial.nodes, parallel.nodes):
        for attr in TRACE_ATTRS:
            assert getattr(a, attr) == getattr(b, attr), (a.node_id, attr)
        assert a.admission == ""  # no arbitration ever ran
