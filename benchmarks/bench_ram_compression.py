"""Compressed-in-RAM rung — same physical RAM, three ways to spend it.

Not a paper figure: this is the headline benchmark of the repo's
``ram-compressed`` tier.  Each DAG's no-spill peak defines the 100% RAM
point; every sweep point fixes the same *physical* RAM budget ``R``
(a below-peak fraction of that peak) and spends it three ways:

* ``nospill`` — all of ``R`` uncompressed, no spill hierarchy: overflow
  loses its flag and pays the warehouse's blocking write;
* ``ssd`` — all of ``R`` uncompressed, cold victims demoted straight to
  an SSD + unbounded-disk hierarchy with raw dumps;
* ``rung`` — a slice of ``R`` re-dedicated to the ``ram-compressed``
  tier: victims are encoded in place at codec cost only (no device
  transfer) and the zlib1 default turns the slice into ~2.1x its size
  in logical capacity.

Every arm plans tier-aware for the hierarchy it actually has.  The
claims under test (the PR's acceptance bar):

* the rung arm is *strictly* faster than both baselines at every
  below-peak RAM point;
* the rung's simulated stored bytes realize the zlib1 preset's ratio;
* on real MiniDB dumps of TPC-DS-shaped tables, the ``columnar``
  codec (dictionary/delta per column before byte compression) beats
  plain ``zlib`` on compression ratio, losslessly;
* the RAM budget invariant holds on every arm.

When ``RAMCODEC_BENCH_JSON`` is set, the sweep's raw data is written
there as JSON — the perf-trajectory artifact CI commits at the repo
root as ``BENCH_<date>.json``.
"""

import os

import numpy as np
import pytest

from repro.bench import emit_result_json, experiments
from repro.db import columnar_codec
from repro.db.table import Table
from repro.store.config import SPILL_CODECS
from repro.workloads.tpcds import generate_tpcds_tables


def test_ram_compression_sweep(benchmark, show):
    result = benchmark.pedantic(experiments.ram_compression_sweep,
                                rounds=1, iterations=1)
    show(result)

    fractions = result.data["fractions"]
    totals = result.data["totals"]

    # the RAM budget invariant (working RAM *and* the rung's stored
    # budget) held on every arm, every run
    assert result.data["budget_ok"]

    # ACCEPTANCE: the rung arm is strictly faster than both the
    # no-spill and the straight-to-SSD baselines at every below-peak
    # RAM point (all sweep points are below the plan's peak)
    for fraction in fractions:
        assert fraction < 1.0
        best_baseline = min(totals["nospill"][fraction],
                            totals["ssd"][fraction])
        assert totals["rung"][fraction] < best_baseline, fraction

    # the rung actually carried traffic and its stored bytes realized
    # the zlib1 preset's ratio
    assert any(count > 0 for count in result.data["rung_spills"].values())
    assert result.data["rung_observed_ratio"] == pytest.approx(
        SPILL_CODECS["zlib1"].ratio)


def _codec_ratios(table: Table) -> dict[str, float]:
    ratios = {}
    for codec in ("zlib", "columnar"):
        blob = columnar_codec.encode_table(table, codec)
        back = columnar_codec.decode_table(blob)
        assert back.equals(table), codec  # lossless round trip
        ratios[codec] = table.nbytes / len(blob)
    return ratios


def test_columnar_codec_beats_zlib_on_tpcds_tables(show):
    """ACCEPTANCE: the columnar codec (per-column dictionary/delta
    before byte compression) out-compresses plain zlib on every
    TPC-DS-shaped MiniDB table, losslessly."""
    tables = generate_tpcds_tables(scale_gb=0.02, seed=1)
    rows = []
    for name, table in sorted(tables.items()):
        ratios = _codec_ratios(table)
        rows.append([name, ratios["zlib"], ratios["columnar"]])
        assert ratios["columnar"] > ratios["zlib"], name
    show(experiments.ExperimentResult(
        experiment_id="ramcodec",
        title="columnar vs zlib on real TPC-DS dumps (higher wins)",
        headers=["table", "zlib ratio", "columnar ratio"],
        rows=rows))


def test_columnar_codec_low_cardinality_and_sequences():
    """The two column shapes the codec exists for: dictionary-coded
    low-cardinality columns and delta-coded near-sequential columns
    both beat plain zlib by a wide margin."""
    rng = np.random.default_rng(7)
    n = 200_000
    table = Table({
        "status": rng.integers(0, 8, n),               # dict: 8 values
        "order_id": np.arange(n, dtype=np.int64) * 3,  # delta: constant
    })
    ratios = _codec_ratios(table)
    assert ratios["columnar"] > 2.0 * ratios["zlib"]


def test_emit_bench_artifact():
    """Write the perf-trajectory JSON when RAMCODEC_BENCH_JSON is set
    (kept as its own test so the sweep above stays a pure benchmark)."""
    if not os.environ.get("RAMCODEC_BENCH_JSON"):
        pytest.skip("RAMCODEC_BENCH_JSON not set")
    result = experiments.ram_compression_sweep()
    tables = generate_tpcds_tables(scale_gb=0.02, seed=1)
    codec_ratios = {name: _codec_ratios(table)
                    for name, table in sorted(tables.items())}
    emit_result_json(result, env_var="RAMCODEC_BENCH_JSON",
                     tpcds_codec_ratios=codec_ratios)
