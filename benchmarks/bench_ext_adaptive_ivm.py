"""Extension experiments: workload drift and IVM composition.

Forward-looking claims the paper makes in prose (§I adaptability, §VII
IVM compatibility), exercised quantitatively on this reproduction's
substrates.
"""

from repro.bench import extensions


def test_adaptive_drift(benchmark, show):
    result = benchmark.pedantic(extensions.adaptive_drift,
                                rounds=1, iterations=1)
    show(result)
    times = result.data["times"]

    # no drift: nothing to adapt to, no re-plans, all three coincide
    no_drift = times[1.0]
    assert no_drift["replans"] == 0
    assert no_drift["adaptive"] <= no_drift["stale"] * 1.02

    # shrink drift (0.5x): the stale plan under-flags; adaptation recovers
    # a real fraction of the oracle's advantage
    shrink = times[0.5]
    assert shrink["adaptive"] < shrink["stale"]
    assert shrink["oracle"] <= shrink["adaptive"] + 1e-9

    # any drift: adaptive never meaningfully worse than stale
    for factor, row in times.items():
        assert row["adaptive"] <= row["stale"] * 1.10, factor
        assert row["oracle"] <= row["stale"] * 1.02 + 1e-9, factor


def test_ivm_integration(benchmark, show):
    result = benchmark.pedantic(extensions.ivm_integration,
                                rounds=1, iterations=1)
    show(result)
    totals = result.data["totals"]

    # each technique helps alone ...
    assert totals["full/S-C"] < totals["full/no-opt"]
    assert totals["ivm/no-opt"] < totals["full/no-opt"]
    # ... S/C still speeds up the incremental workload ...
    assert totals["ivm/S-C"] < totals["ivm/no-opt"]
    # ... and the composition beats everything else
    assert totals["ivm/S-C"] == min(totals.values())
