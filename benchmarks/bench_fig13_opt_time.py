"""Figure 13 — optimization time vs DAG size.

Paper claims: MKP + MA-DFS scales roughly linearly with DAG size and
remains negligible at 100 nodes (0.02 s with OR-Tools' C++ BnB; our
pure-Python solver is slower in absolute terms but must preserve the
shape); the scan baselines are faster, SA and Separator are markedly
slower than MKP + MA-DFS.
"""

from repro.bench import experiments


def test_fig13_optimization_time(benchmark, show):
    result = benchmark.pedantic(
        experiments.fig13_optimization_time,
        kwargs={"dag_sizes": (10, 25, 50, 100), "n_dags": 3},
        rounds=1, iterations=1)
    show(result)
    times = result.data["times"]
    sizes = sorted(times)
    ours = [times[s]["mkp+madfs"] for s in sizes]

    # bounded growth at scale: easy instances solve in milliseconds; once
    # the BnB node cap engages (dense 50+-node DAGs) the time is capped, so
    # doubling the DAG from 50 to 100 nodes costs at most a few x
    assert ours[-1] / max(ours[-2], 1e-6) < 6, ours
    assert ours[-1] < 5.0, ours  # seconds; paper's C++ solver: 0.02 s
    # SA is the slowest family at scale (10k objective evaluations)
    at_100 = times[sizes[-1]]
    assert at_100["mkp+sa"] > at_100["mkp+madfs"], at_100
    # the scan selectors are at most as expensive as the exact MKP
    assert at_100["greedy+madfs"] <= at_100["mkp+madfs"] * 1.5, at_100
