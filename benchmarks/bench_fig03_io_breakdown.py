"""Figure 3 — read/compute/write share of a 4-table join CTAS.

Paper claim: writing the joined result to storage takes 37-69 % of each
statement's runtime — I/O, not compute, dominates materialization. Here
the same statement (the TPC-H Q8 join) runs on the real MiniDB with real
compressed disk I/O.
"""

from repro.bench import experiments


def test_fig3_io_breakdown(benchmark, show):
    result = benchmark.pedantic(
        experiments.fig3_io_breakdown,
        kwargs={"scales_gb": (0.01, 0.02, 0.05)},
        rounds=1, iterations=1)
    show(result)
    for scale, timing in result.data["timings"].items():
        total = timing.total_seconds
        write_share = timing.write_seconds / total
        io_share = (timing.read_seconds + timing.write_seconds) / total
        # write is a major cost, and I/O in total dominates compute-only
        assert write_share > 0.2, (scale, write_share)
        assert io_share > 0.35, (scale, io_share)
