"""Figure 12 — ablation: swap each S/C Opt subproblem solution for a
baseline inside the alternating loop.

Paper claims: MKP + MA-DFS (ours) beats every ablated combination —
Greedy/Random/Ratio selection paired with MA-DFS, and MKP paired with
SA or Separator ordering — saving an additional 3-11 % of execution time.
"""

from repro.bench import experiments


def test_fig12_ablation(benchmark, show):
    result = benchmark.pedantic(experiments.fig12_ablation,
                                rounds=1, iterations=1)
    show(result)
    totals = result.data["totals"]
    for dataset in ("TPC-DS", "TPC-DSp"):
        ours = totals[(dataset, "mkp+madfs")]
        none = totals[(dataset, "none")]
        assert ours < none, dataset
        for method in ("random+madfs", "greedy+madfs", "ratio+madfs",
                       "mkp+sa", "mkp+separator"):
            # ours is at least as good as every ablation (ties allowed)
            assert ours <= totals[(dataset, method)] * 1.01, \
                (dataset, method)
        # and strictly better than at least one of them
        assert any(ours < totals[(dataset, m)] * 0.999
                   for m in ("random+madfs", "greedy+madfs",
                             "ratio+madfs", "mkp+sa", "mkp+separator")), \
            dataset
