"""Table III — the five workloads: node counts and I/O ratios.

Paper claim: the workloads decompose into 21/19/26/21/16 SPJ nodes with
Polars-profiled I/O ratios of 51.5/59.0/46.6/0.9/28.3 %.
"""

from repro.bench import experiments
from repro.workloads.five_workloads import WORKLOAD_SUMMARY


def test_table3_workload_summary(benchmark, show):
    result = benchmark.pedantic(experiments.table3_workload_summary,
                                rounds=1, iterations=1)
    show(result)
    by_name = {row[0]: row for row in result.rows}
    for name, (_, n_nodes, io_share) in WORKLOAD_SUMMARY.items():
        row = by_name[name]
        assert row[2] == n_nodes
        # measured I/O share matches the calibration target closely
        assert abs(row[3] - row[4]) < 1.0, row
