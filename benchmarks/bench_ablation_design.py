"""Ablations of this reproduction's design decisions (DESIGN.md §5).

Not a paper figure: these benches quantify the choices the paper leaves
implicit — Algorithm 2's convergence test, the BnB optimality gap, and
the background-channel assumptions the simulator adds.
"""

from repro.bench import extensions


def test_ablation_convergence(benchmark, show):
    result = benchmark.pedantic(extensions.ablation_convergence,
                                rounds=1, iterations=1)
    show(result)
    scores = result.data["scores"]
    for name, per in scores.items():
        # the size-based stop (paper, line 5) never trails score-based by
        # more than a whisker on these workloads
        assert per["size"] >= per["score"] * 0.97, name


def test_ablation_tolerance(benchmark, show):
    result = benchmark.pedantic(extensions.ablation_tolerance,
                                rounds=1, iterations=1)
    show(result)
    scores = result.data["scores"]
    for name, per in scores.items():
        # the 1 % gap costs at most ~2 % of the exact flagged score
        assert per["1% gap"] >= per["exact"] * 0.98, name
        assert per["1% gap"] <= per["exact"] * 1.0 + 1e-6, name


def test_sensitivity_background(benchmark, show):
    result = benchmark.pedantic(extensions.sensitivity_background,
                                rounds=1, iterations=1)
    show(result)
    speedups = result.data["speedups"]
    # S/C keeps a solid win under every assumption ...
    for label, speedup in speedups.items():
        assert speedup > 1.15, label
    # ... and the ranking is physically sensible
    assert speedups["interference 0%"] >= \
        speedups["interference 10%"] - 1e-9
    assert speedups["parallelism 4x"] >= \
        speedups["parallelism 1x"] - 1e-9
