"""A real MV pipeline on the MiniDB: profile -> optimize -> refresh.

This is the paper's full loop on genuine data: generate a TPC-DS-like star
schema, define a dbt-style DAG of materialized views in SQL, run one
profiling refresh to collect execution metadata (sizes + timings), let S/C
plan the next refresh, and execute it with real in-memory short-circuiting
and background materialization threads.

Run:  python examples/mv_pipeline.py
"""

import shutil
import tempfile

from repro import ScProblem, optimize
from repro.core.plan import Plan
from repro.db import MiniDB, SqlWorkload
from repro.db.engine import MvDefinition
from repro.db.runner import run_workload
from repro.workloads.tpcds import load_tpcds

MV_DEFINITIONS = [
    MvDefinition(
        "mv_store_enriched",
        "SELECT ss_item_sk, ss_quantity, ss_sales_price, ss_net_profit, "
        "i_category_id, i_brand_id, d_year "
        "FROM store_sales "
        "JOIN item ON ss_item_sk = i_item_sk "
        "JOIN date_dim ON ss_sold_date_sk = d_date_sk"),
    MvDefinition(
        "mv_category_report",
        "SELECT i_category_id, d_year, "
        "SUM(ss_sales_price * ss_quantity) AS revenue, "
        "SUM(ss_net_profit) AS profit "
        "FROM mv_store_enriched GROUP BY i_category_id, d_year"),
    MvDefinition(
        "mv_brand_volume",
        "SELECT i_brand_id, SUM(ss_quantity) AS volume "
        "FROM mv_store_enriched GROUP BY i_brand_id"),
    MvDefinition(
        "mv_web_summary",
        "SELECT ws_item_sk, SUM(ws_sales_price) AS web_revenue "
        "FROM web_sales GROUP BY ws_item_sk"),
    MvDefinition(
        "mv_top_categories",
        "SELECT i_category_id, profit FROM mv_category_report "
        "WHERE profit > 0 ORDER BY profit DESC LIMIT 100"),
]


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro_pipeline_")
    try:
        db = MiniDB(directory)
        print("loading TPC-DS-like data (~60 MB)...")
        load_tpcds(db, scale_gb=0.06, seed=0)
        workload = SqlWorkload(db=db, definitions=MV_DEFINITIONS)

        print("profiling run (collects the paper's execution metadata)...")
        graph = workload.profile()
        for node_id in graph.nodes():
            node = graph.node(node_id)
            print(f"  {node_id:20s} size={node.size * 1024:8.2f} MB "
                  f"compute={node.compute_time:6.3f}s "
                  f"score={node.score:6.3f}")

        budget = 1.2 * max(graph.sizes().values())
        problem = ScProblem(graph=graph, memory_budget=budget)
        plan = optimize(problem, method="sc").plan
        print(f"\nMemory Catalog: {budget * 1024:.1f} MB; flagged: "
              f"{sorted(plan.flagged)}")

        print("\nrefresh with S/C (real background materialization):")
        sc_trace = run_workload(workload, plan, budget, method="sc")
        print(f"  end-to-end: {sc_trace.end_to_end_time:.3f}s "
              f"(peak catalog {sc_trace.peak_catalog_usage * 1024:.1f} MB)")

        for definition in MV_DEFINITIONS:
            db.drop(definition.name)

        print("refresh without optimization (serial, all on disk):")
        none_trace = run_workload(
            workload, Plan.unoptimized(plan.order), 0.0, method="none")
        print(f"  end-to-end: {none_trace.end_to_end_time:.3f}s")
        print(f"\nreal speedup: "
              f"{none_trace.end_to_end_time / sc_trace.end_to_end_time:.2f}x")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
