"""Incremental view maintenance + S/C: the paper's compatibility claim.

Builds a small star-schema pipeline on the mini columnar DBMS, maintains
it incrementally across two simulated "daily" ingests, and shows how each
refresh round becomes an S/C problem: IVM shrinks the nodes, S/C still
reorders the refresh and keeps hot deltas in memory.

Run:  python examples/incremental_refresh.py
"""

import numpy as np

from repro.core.optimizer import optimize
from repro.db.table import Table
from repro.db.expressions import AggSpec, BinOp, Col, Lit
from repro.ivm import (
    Aggregate,
    Filter,
    IncrementalPipeline,
    Join,
    Scan,
    SignedDelta,
)


def base_tables(rng: np.random.Generator) -> dict[str, Table]:
    n = 50_000
    sales = Table.from_dict({
        "item": rng.integers(0, 500, n),
        "store": rng.integers(0, 40, n),
        "qty": rng.integers(1, 10, n),
    })
    items = Table.from_dict({
        "item": np.arange(500),
        "category": rng.integers(0, 12, 500),
    })
    return {"sales": sales, "items": items}


def daily_delta(rng: np.random.Generator, sales: Table) -> SignedDelta:
    """~2 % new rows, ~0.5 % corrections (deletions of existing rows)."""
    n_new = len(sales) // 50
    inserts = Table.from_dict({
        "item": rng.integers(0, 500, n_new),
        "store": rng.integers(0, 40, n_new),
        "qty": rng.integers(1, 10, n_new),
    })
    n_fix = len(sales) // 200
    deletes = sales.take(rng.choice(len(sales), n_fix, replace=False))
    return SignedDelta.from_changes(inserts, deletes)


def main() -> None:
    rng = np.random.default_rng(7)
    pipe = IncrementalPipeline(base_tables(rng))
    pipe.add_view("bulk_sales",
                  Filter(Scan("sales"), BinOp(">=", Col("qty"), Lit(3))))
    pipe.add_view("named_sales",
                  Join(Scan("bulk_sales"), Scan("items"), "item", "item"))
    pipe.add_view("category_totals",
                  Aggregate(Scan("named_sales"), group_by=("category",),
                            aggs=(AggSpec("SUM", Col("qty"), "total"),
                                  AggSpec("COUNT", None, "n"))))
    pipe.materialize_all()
    print("== initial materialization ==")
    for name, view in pipe.views.items():
        print(f"  {name:16s} {len(view.table):>7,} rows")

    for day in (1, 2):
        delta = daily_delta(rng, pipe.base_tables["sales"])
        report = pipe.ingest({"sales": delta})
        pipe.verify_against_full_recompute()
        print(f"\n== day {day} ingest "
              f"({delta.n_changes:,} changed base rows) ==")
        for name in pipe.view_order():
            print(f"  {name:16s} delta rows={report.changed_rows[name]:>6,}"
                  f"  delta bytes={report.delta_bytes[name]:>9,}")

        problem = pipe.to_sc_problem(report, memory_budget_gb=1e-3)
        result = optimize(problem, method="sc")
        print(f"  S/C refresh order: {' -> '.join(result.plan.order)}")
        print(f"  kept in memory:    {sorted(result.plan.flagged)}")


if __name__ == "__main__":
    main()
