"""Capacity planning: how much Memory Catalog does a workload deserve?

Sweeps the Memory Catalog size for each of the paper's five workloads
(Figure 11's axis) and prints the speedup curve plus the knee point — the
smallest catalog capturing most of the achievable gain. This is the
question a warehouse admin would actually ask before carving memory out of
a cluster.

Run:  python examples/memory_planning.py
"""

from repro.engine import Controller
from repro.metadata import DeviceProfile
from repro.workloads import WORKLOAD_NAMES, build_five_workloads

FRACTIONS = (0.002, 0.004, 0.008, 0.016, 0.032, 0.064)
SCALE_GB = 100.0


def main() -> None:
    controller = Controller(profile=DeviceProfile())
    workloads = build_five_workloads(scale_gb=SCALE_GB, partitioned=True)

    header = "workload   " + "".join(f"{100 * f:7.1f}%" for f in FRACTIONS)
    print(f"S/C speedup vs Memory Catalog size ({SCALE_GB:g} GB TPC-DSp)")
    print(header)
    print("-" * len(header))

    for name in WORKLOAD_NAMES:
        graph = workloads[name]
        base = controller.refresh(graph, 0.0, method="none")
        speedups = []
        for fraction in FRACTIONS:
            budget = fraction * SCALE_GB
            trace = controller.refresh(graph, budget, method="sc")
            speedups.append(base.end_to_end_time / trace.end_to_end_time)
        cells = "".join(f"{s:7.2f}x" for s in speedups)
        print(f"{name:10s} {cells}")

        best = max(speedups)
        knee = next(
            (f for f, s in zip(FRACTIONS, speedups)
             if s >= 1.0 + 0.9 * (best - 1.0)),
            FRACTIONS[-1])
        print(f"{'':10s} -> 90% of the gain at "
              f"{100 * knee:.1f}% of data size "
              f"({knee * SCALE_GB:.1f} GB)")


if __name__ == "__main__":
    main()
