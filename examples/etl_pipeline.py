"""Generic ETL pipelines under S/C (the paper's future-work direction).

Describes a realistic extract → transform → load DAG the way an Airflow
coordinator sees it, optimizes it under a memory budget, prints the
executable schedule (where each output goes, when memory copies drop),
explains every flag decision, and quantifies the speedup by simulation.

Run:  python examples/etl_pipeline.py
"""

from repro.core.problem import ScProblem
from repro.etl import JobSpec, PipelineSpec, plan_pipeline
from repro.etl.planner import simulate_schedule, spec_to_graph
from repro.viz import explain_plan
from repro.core.plan import Plan


def clickstream_pipeline() -> PipelineSpec:
    return PipelineSpec(name="clickstream_hourly", jobs=[
        JobSpec("extract_events", kind="extract", output_gb=1.1,
                external_input_gb=1.6, compute_s=4.0),
        JobSpec("extract_users", kind="extract", output_gb=0.2,
                external_input_gb=0.3, compute_s=1.0),
        JobSpec("dedupe", inputs=("extract_events",), output_gb=1.0,
                compute_s=5.0),
        JobSpec("sessionize", inputs=("dedupe",), output_gb=0.9,
                compute_s=6.0),
        JobSpec("enrich", inputs=("sessionize", "extract_users"),
                output_gb=1.0, compute_s=4.0),
        JobSpec("funnel_metrics", inputs=("enrich",), output_gb=0.08,
                compute_s=3.0),
        JobSpec("ad_attribution", inputs=("enrich",), output_gb=0.15,
                compute_s=3.5),
        JobSpec("load_warehouse", kind="load", inputs=("enrich",),
                output_gb=1.0, compute_s=1.0),
        JobSpec("load_metrics", kind="load",
                inputs=("funnel_metrics", "ad_attribution"),
                output_gb=0.23, compute_s=0.5),
    ])


def main() -> None:
    spec = clickstream_pipeline()
    budget = 1.5

    schedule = plan_pipeline(spec, memory_budget_gb=budget)
    print(schedule.render())

    print("\n== why each decision ==")
    graph = spec_to_graph(spec)
    problem = ScProblem(graph=graph, memory_budget=budget)
    plan = Plan.make(schedule.order, set(schedule.flagged))
    print(explain_plan(problem, plan))

    print("\n== simulated impact ==")
    optimized = simulate_schedule(spec, schedule)
    baseline = simulate_schedule(
        spec, plan_pipeline(spec, memory_budget_gb=0.0))
    print(f"  unoptimized: {baseline.end_to_end_time:7.2f} s")
    print(f"  S/C:         {optimized.end_to_end_time:7.2f} s "
          f"({baseline.end_to_end_time / optimized.end_to_end_time:.2f}x)")


if __name__ == "__main__":
    main()
