"""Adaptive re-planning when observed sizes drift from estimates.

A nightly pipeline was profiled when its tables were small; the business
grew and every intermediate is now ~2.5x the recorded estimate. The
stale plan flags MVs that no longer fit; the adaptive controller notices
the drift after its first epoch, rescales the remaining estimates, and
re-plans — recovering most of the oracle's (true-size-aware) advantage.

Run:  python examples/adaptive_replanning.py
"""

from repro.core.speedup import compute_speedup_scores
from repro.engine.adaptive import AdaptiveController
from repro.graph.dag import DependencyGraph
from repro.metadata.costmodel import DeviceProfile
from repro.metadata.store import MetadataStore, RecurringPipeline


def profiled_graph() -> DependencyGraph:
    """Estimates as recorded by last quarter's runs."""
    graph = DependencyGraph()
    layers = [("extract", 1.2), ("clean", 0.9), ("join_dims", 1.1),
              ("sessionize", 0.8), ("features", 0.7), ("daily_agg", 0.1),
              ("weekly_agg", 0.05), ("report", 0.02)]
    previous = None
    for name, size in layers:
        graph.add_node(name, size=size, compute_time=2.0)
        if previous:
            graph.add_edge(previous, name)
        previous = name
    compute_speedup_scores(graph, DeviceProfile())
    return graph


def main() -> None:
    graph = profiled_graph()
    growth = 2.5
    truth = {v: growth * graph.size_of(v) for v in graph.nodes()}
    budget = 2.0

    controller = AdaptiveController(drift_threshold=0.25, check_window=2)
    stale = controller.stale_time(graph, truth, budget)
    oracle = controller.oracle_time(graph, truth, budget)
    adaptive = controller.refresh(graph, truth, budget)

    print(f"data grew {growth}x past the profiled estimates "
          f"(budget {budget:g} GB)\n")
    print(f"  stale plan (never adapts):   {stale:8.2f} s")
    print(f"  adaptive ({adaptive.n_replans} re-plans):"
          f"        {adaptive.total_time:8.2f} s")
    print(f"  oracle (knew true sizes):    {oracle:8.2f} s")
    recovered = (stale - adaptive.total_time) / max(stale - oracle, 1e-9)
    print(f"\nadaptive recovered {100 * recovered:.0f}% of the "
          "oracle's advantage")

    print("\nsegments:")
    for i, seg in enumerate(adaptive.segments):
        mark = " -> re-planned" if seg.replanned_after else ""
        print(f"  {i + 1}. {', '.join(seg.nodes):<40} "
              f"{seg.duration:7.2f} s  drift={seg.drift_ratio:.2f}{mark}")

    # across runs, the persistent store keeps observations for next time
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        store = MetadataStore(root)
        pipeline = RecurringPipeline(store=store, workload="nightly")
        pipeline.observe(truth)
        plan = pipeline.plan(graph, memory_budget=budget)
        print("\nnext run plans from the persisted observations:")
        print(f"  flagged: {sorted(plan.flagged)}")


if __name__ == "__main__":
    main()
