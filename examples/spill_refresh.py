"""Spill-to-disk refresh: running an S/C plan on less RAM than it needs.

Generates a workload DAG, plans it with S/C, and measures the plan's
peak Memory Catalog residency.  Then it re-executes the *same plan* at
RAM budgets swept below that peak with the tiered store armed
(RAM -> SSD -> unbounded disk): instead of stalling or giving up flags,
cold intermediates are demoted to lower tiers (and promoted back on
read), so every run completes — with a measurable slowdown instead of a
failure.  Three things to watch:

* the RAM-tier peak never exceeds its budget, on any run;
* the runtime penalty grows smoothly as the budget shrinks, tracking
  the spill volume;
* the same sweep works on the parallel backend, where admission-time
  reservations trigger the demotions instead of output-time inserts.

Run:  python examples/spill_refresh.py
"""

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine import Controller, SimulatorOptions
from repro.store import SpillConfig, TierSpec
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)

FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.1)


def main() -> None:
    generator = WorkloadGenerator()
    config = GeneratedWorkloadConfig(n_nodes=32, height_width_ratio=0.5)
    graph = generator.generate(config, seed=7)
    budget = 0.3 * graph.total_size()
    problem = ScProblem(graph=graph, memory_budget=budget)
    plan = optimize(problem, method="sc", seed=7).plan

    baseline = Controller().refresh(graph, budget, plan=plan, method="sc")
    peak = baseline.peak_catalog_usage
    print(f"DAG: {graph.n} nodes, plan flags {len(plan.flagged)} MVs, "
          f"peak residency {peak:.2f} GB "
          f"(baseline {baseline.end_to_end_time:.2f} s)")

    for backend in ("simulator", "parallel"):
        print(f"\n== {backend} backend, RAM swept below the plan's peak ==")
        print(f"{'RAM':>12s} {'time (s)':>10s} {'penalty':>8s} "
              f"{'spills':>7s} {'promotes':>9s} {'ram peak':>9s}")
        for fraction in FRACTIONS:
            ram = fraction * peak
            spill = SpillConfig(
                tiers=(TierSpec("ssd", 0.5 * peak), TierSpec("disk")),
                policy="cost")
            controller = Controller(options=SimulatorOptions(spill=spill))
            trace = controller.refresh(graph, ram, plan=plan, method="sc",
                                       backend=backend, workers=4)
            report = trace.extras["tiered_store"]
            # the RAM tier never exceeds its budget, on every run
            assert trace.peak_catalog_usage <= ram + 1e-9
            assert report["tiers"][0]["peak"] <= ram + 1e-9
            assert len(trace.nodes) == graph.n
            print(f"{100 * fraction:10.0f} % "
                  f"{trace.end_to_end_time:10.2f} "
                  f"{trace.end_to_end_time / baseline.end_to_end_time:7.2f}x "
                  f"{report['spill_count']:7d} "
                  f"{report['promote_count']:9d} "
                  f"{trace.peak_catalog_usage:8.2f}")


if __name__ == "__main__":
    main()
