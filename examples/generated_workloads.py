"""Synthetic workloads: stress S/C on generated DAG shapes (paper §VI-H).

Generates layered DAGs across the four Figure 14 axes (size, height/width
ratio, max out-degree, stage variance), optimizes each with S/C and with
the scan baselines, and reports where the joint optimization matters most.

Run:  python examples/generated_workloads.py
"""

import time

from repro import ScProblem, optimize
from repro.workloads import GeneratedWorkloadConfig, generate_workload

CONFIGS = {
    "square-50": GeneratedWorkloadConfig(n_nodes=50),
    "thin-50 (deep pipeline)": GeneratedWorkloadConfig(
        n_nodes=50, height_width_ratio=4.0),
    "wide-50 (fan-out heavy)": GeneratedWorkloadConfig(
        n_nodes=50, height_width_ratio=0.25),
    "bushy-50 (out-degree 6)": GeneratedWorkloadConfig(
        n_nodes=50, max_outdegree=6),
    "large-100": GeneratedWorkloadConfig(n_nodes=100),
}

N_SEEDS = 5
BUDGET_FRACTION = 0.016


def main() -> None:
    print(f"mean flagged speedup score over {N_SEEDS} seeds, "
          f"Memory Catalog = {100 * BUDGET_FRACTION:.1f}% of total size\n")
    print(f"{'shape':26s} {'S/C':>10s} {'greedy':>10s} {'ratio':>10s} "
          f"{'S/C time':>10s}")
    for label, config in CONFIGS.items():
        totals = {"sc": 0.0, "greedy": 0.0, "ratio": 0.0}
        elapsed = 0.0
        for seed in range(N_SEEDS):
            graph = generate_workload(config, seed=seed)
            problem = ScProblem(
                graph=graph,
                memory_budget=BUDGET_FRACTION * graph.total_size())
            started = time.perf_counter()
            totals["sc"] += optimize(problem, "sc").total_score
            elapsed += time.perf_counter() - started
            for method in ("greedy", "ratio"):
                totals[method] += optimize(problem, method,
                                           seed=seed).total_score
        print(f"{label:26s} {totals['sc'] / N_SEEDS:10.2f} "
              f"{totals['greedy'] / N_SEEDS:10.2f} "
              f"{totals['ratio'] / N_SEEDS:10.2f} "
              f"{elapsed / N_SEEDS:9.3f}s")

    print("\nHigher score = more read/write time short-circuited per run.")


if __name__ == "__main__":
    main()
