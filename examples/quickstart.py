"""Quickstart: optimize and simulate one MV refresh run.

Builds the paper's Figure 7 toy graph — six MVs where the execution order
decides whether both 100 GB intermediates can live in a 100 GB Memory
Catalog — runs S/C's joint optimization, and simulates the refresh.

Run:  python examples/quickstart.py
"""

from repro import DependencyGraph, ScProblem, optimize
from repro.core.optimizer import plan_summary
from repro.engine import Controller


def build_graph() -> DependencyGraph:
    graph = DependencyGraph()
    sizes = {"v1": 100, "v2": 10, "v3": 100, "v4": 10, "v5": 10, "v6": 10}
    for name, size in sizes.items():
        # toy convention from the paper: score == size in GB
        graph.add_node(name, size=size, score=size, compute_time=30.0)
    for producer, consumer in [("v1", "v2"), ("v1", "v4"), ("v2", "v3"),
                               ("v3", "v5"), ("v5", "v6")]:
        graph.add_edge(producer, consumer)
    return graph


def main() -> None:
    graph = build_graph()
    problem = ScProblem(graph=graph, memory_budget=100.0)

    print("== S/C joint optimization (MKP + MA-DFS) ==")
    result = optimize(problem, method="sc")
    print(f"execution order: {' -> '.join(result.plan.order)}")
    print(f"flagged (kept in memory): {sorted(result.plan.flagged)}")
    for key, value in plan_summary(problem, result).items():
        print(f"  {key}: {value}")

    print("\n== Baselines on the same instance ==")
    for method in ("none", "greedy", "ratio"):
        res = optimize(problem, method=method, seed=0)
        print(f"  {method:8s} score={res.total_score:6.1f} "
              f"flagged={sorted(res.plan.flagged)}")

    print("\n== Simulated refresh run ==")
    controller = Controller()
    for method in ("none", "sc"):
        trace = controller.refresh(graph, 100.0, method=method)
        print(f"  {method:5s} end-to-end={trace.end_to_end_time:8.2f}s "
              f"reads={trace.table_read_latency:7.2f}s "
              f"blocking-writes={trace.write_latency:7.2f}s")
    base = controller.refresh(graph, 100.0, method="none").end_to_end_time
    sc = controller.refresh(graph, 100.0, method="sc").end_to_end_time
    print(f"\nS/C speedup: {base / sc:.2f}x")


if __name__ == "__main__":
    main()
