"""Parallel refresh: the memory-bounded scheduler on a wide DAG.

Generates a wide workload DAG (many independent MVs per level), plans it
with S/C, then executes the same plan on the serial simulator and on the
``"parallel"`` backend with growing worker counts.  Three things to watch:

* ``workers=1`` reproduces the serial simulator's makespan exactly
  (serial-equivalent mode);
* more workers shrink the makespan — independent DAG nodes run
  concurrently on logical workers;
* the Memory Catalog peak stays within budget on every run: the shared
  MemoryLedger's admission control blocks a flagged node until its
  output fits, no matter how many workers race for space.

Run:  python examples/parallel_refresh.py
"""

from repro.core.optimizer import optimize
from repro.core.problem import ScProblem
from repro.engine import Controller
from repro.exec.parallel import run_threaded
from repro.workloads.generator import (
    GeneratedWorkloadConfig,
    WorkloadGenerator,
)


def main() -> None:
    generator = WorkloadGenerator()
    config = GeneratedWorkloadConfig(n_nodes=48, height_width_ratio=0.25)
    graph = generator.generate(config, seed=7)
    budget = 0.25 * graph.total_size()
    problem = ScProblem(graph=graph, memory_budget=budget)
    plan = optimize(problem, method="sc", seed=7).plan

    print(f"wide DAG: {graph.n} nodes, {graph.m} edges, "
          f"budget {budget:.1f} GB, {len(plan.flagged)} flagged")

    controller = Controller()
    serial = controller.refresh(graph, budget, plan=plan, method="sc")
    print(f"\n== simulated makespan ==")
    print(f"  serial simulator   {serial.end_to_end_time:9.2f} s "
          f"(peak {serial.peak_catalog_usage:6.2f} GB)")
    for workers in (1, 2, 4, 8):
        trace = controller.refresh(graph, budget, plan=plan, method="sc",
                                   backend="parallel", workers=workers)
        assert trace.peak_catalog_usage <= budget + 1e-9
        print(f"  parallel x{workers:<2d}       {trace.end_to_end_time:9.2f} s "
              f"(peak {trace.peak_catalog_usage:6.2f} GB, "
              f"speedup {serial.end_to_end_time / trace.end_to_end_time:4.2f}x)")

    print("\n== real threads (sleep-backed work, wall clock) ==")
    for workers in (1, 8):
        trace = run_threaded(graph, plan, budget, workers=workers,
                             time_scale=2e-4)
        print(f"  threads x{workers:<2d}        {trace.end_to_end_time:9.3f} s "
              f"(peak {trace.peak_catalog_usage:6.2f} GB)")


if __name__ == "__main__":
    main()
