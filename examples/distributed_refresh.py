"""Distributed refresh: S/C on growing Presto-style clusters (Table V).

Shows the paper's §VI-G finding on the simulator: adding workers shrinks
absolute runtimes sub-linearly (Amdahl), while S/C's relative speedup stays
flat — the memory-scheduling optimization composes with horizontal
scaling instead of competing with it.

Run:  python examples/distributed_refresh.py
"""

from repro import ScProblem, optimize
from repro.engine.cluster import simulate_cluster_run
from repro.metadata import ClusterProfile
from repro.workloads import build_five_workloads

SCALE_GB = 100.0
BUDGET_GB = 1.6


def main() -> None:
    workloads = build_five_workloads(scale_gb=SCALE_GB)
    plans = {}
    for name, graph in workloads.items():
        problem = ScProblem(graph=graph, memory_budget=BUDGET_GB)
        plans[name] = {
            "none": optimize(problem, "none").plan,
            "sc": optimize(problem, "sc").plan,
        }

    print(f"five workloads, {SCALE_GB:g} GB TPC-DS, "
          f"{BUDGET_GB} GB Memory Catalog\n")
    print(f"{'workers':>8s} {'no-opt (s)':>12s} {'S/C (s)':>10s} "
          f"{'speedup':>9s}")
    for workers in (1, 2, 3, 4, 5):
        cluster = ClusterProfile(worker_count=workers)
        total = {"none": 0.0, "sc": 0.0}
        for name, graph in workloads.items():
            for method in ("none", "sc"):
                trace = simulate_cluster_run(
                    graph, plans[name][method], BUDGET_GB, cluster,
                    method=method)
                total[method] += trace.end_to_end_time
        print(f"{workers:>8d} {total['none']:>12.1f} "
              f"{total['sc']:>10.1f} "
              f"{total['none'] / total['sc']:>8.2f}x")

    print("\nThe speedup column stays flat: S/C's savings are orthogonal "
          "to cluster scaling.")


if __name__ == "__main__":
    main()
