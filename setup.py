"""Legacy shim so `pip install -e . --no-use-pep517` works offline.

All real metadata lives in pyproject.toml (PEP 621); setuptools reads
it from there on this code path too.
"""
from setuptools import setup

setup()
